//! Assembly of the full system: clusters of servers and workstations, the
//! shared clock, authenticated bindings, callback delivery, and the
//! administrative operations (users, volumes, replication) that the paper
//! assigns to operators rather than to the file system interface.
//!
//! [`ItcSystem`] is the façade experiments and examples drive. Its
//! file-operation methods mirror the workstation system-call layer: each
//! takes a workstation id, runs the Venus logic (which may issue
//! authenticated RPCs through the simulated network), advances virtual
//! time, and afterwards delivers any callback breaks the touched server
//! generated.
//!
//! ## Time model
//!
//! Each workstation keeps its own local virtual time (operations at one
//! workstation are strictly sequential); server CPUs and disks are shared
//! FIFO resources, so concurrent clients contend there. The global
//! [`Clock`] tracks the high-water mark for utilization windows. Callback
//! breaks are delivered functionally at the moment the store completes;
//! their network cost is charged, but a lagging workstation's local clock
//! is not dragged forward (breaks are asynchronous notifications).

use crate::config::SystemConfig;
use crate::location::LocationDb;
use crate::metrics::{merge_cache, merge_venus, ServerMetrics, SystemMetrics};
use crate::proto::{
    decode_reply, decode_request, encode_reply, encode_request, EntryKind, ServerId, VStatus,
    ViceError, ViceReply, ViceRequest,
};
use crate::protect::{AccessList, ProtectionDomain, ProtectionServer, Rights};
use crate::server::{CallCost, Server};
use crate::monitor::TrafficMonitor;
use crate::surrogate::{PcId, Surrogate};
use crate::venus::{Space, Venus, VenusError, ViceTransport, WorkstationType};
use crate::volume::{Volume, VolumeId};
use itc_cryptbox::{derive_key, Key};
use itc_rpc::binding::{establish, Binding};
use itc_rpc::{CallSpec, CallStats, Network, NodeId, RetryPolicy, TimingKernel};
use itc_sim::{Clock, FaultPlan, FaultStats, MessageFault, SimRng, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Index of a workstation within the system.
pub type WsId = usize;

/// Errors from system-level (administrative) operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Venus-level failure.
    Venus(VenusError),
    /// Protection domain failure (duplicate user, unknown principal...).
    Domain(String),
    /// Authentication failed at login.
    AuthFailed(String),
    /// Volume administration failure.
    Volume(String),
    /// No such workstation/server.
    BadId(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Venus(e) => write!(f, "{e}"),
            SystemError::Domain(m) => write!(f, "protection domain: {m}"),
            SystemError::AuthFailed(m) => write!(f, "authentication failed: {m}"),
            SystemError::Volume(m) => write!(f, "volume: {m}"),
            SystemError::BadId(m) => write!(f, "bad id: {m}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<VenusError> for SystemError {
    fn from(e: VenusError) -> Self {
        SystemError::Venus(e)
    }
}

/// A callback break awaiting delivery, tagged with its origin server and
/// send time.
#[derive(Debug)]
struct PendingBreak {
    from_server: ServerId,
    to_ws: NodeId,
    path: String,
    sent_at: SimTime,
}

/// The assembled system.
#[derive(Debug)]
pub struct ItcSystem {
    config: SystemConfig,
    network: Network,
    clock: Rc<Clock>,
    kernel: TimingKernel,
    servers: Vec<Server>,
    clients: Vec<Venus>,
    ws_nodes: Vec<NodeId>,
    node_to_ws: HashMap<NodeId, WsId>,
    home: HashMap<NodeId, ServerId>,
    domain: Rc<RefCell<ProtectionDomain>>,
    pserver: ProtectionServer,
    bindings: HashMap<(NodeId, ServerId), Binding>,
    rng: SimRng,
    next_volume: u32,
    surrogates: HashMap<WsId, Surrogate>,
    monitor: Option<TrafficMonitor>,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    retry_rng: SimRng,
    call_stats: CallStats,
    next_token: u64,
}

impl ItcSystem {
    /// Builds a system: one cluster server per cluster, the configured
    /// number of workstations per cluster (alternating Sun and Vax), a
    /// root volume mounted at `/vice` on server 0, and the standard
    /// `/vice/usr`, `/vice/unix/<arch>/{bin,lib}` skeleton.
    pub fn build(config: SystemConfig) -> ItcSystem {
        let mut network = Network::new();
        let domain = Rc::new(RefCell::new(ProtectionDomain::new()));
        let mut servers = Vec::new();
        let mut clients = Vec::new();
        let mut ws_nodes = Vec::new();
        let mut node_to_ws = HashMap::new();
        let mut home = HashMap::new();

        for c in 0..config.clusters {
            let cluster = network.add_cluster();
            let srv_node = network.add_node(cluster);
            let sid = ServerId(c);
            servers.push(Server::new(
                sid,
                srv_node,
                Rc::clone(&domain),
                config.validation,
                config.traversal,
            ));
            for w in 0..config.workstations_per_cluster {
                let node = network.add_node(cluster);
                let ws_type = if (c + w) % 2 == 0 {
                    WorkstationType::Sun
                } else {
                    WorkstationType::Vax
                };
                let venus = Venus::with_write_policy(
                    node,
                    ws_type,
                    config.cache,
                    config.validation,
                    config.traversal,
                    config.costs.clone(),
                    config.write_policy,
                );
                node_to_ws.insert(node, clients.len());
                ws_nodes.push(node);
                home.insert(node, sid);
                clients.push(venus);
            }
        }

        let pserver = ProtectionServer::new(Rc::clone(&domain), config.clusters);
        let kernel = TimingKernel::new(config.costs.clone(), config.structure, config.encryption);
        let mut sys = ItcSystem {
            rng: SimRng::seeded(config.seed),
            kernel,
            network,
            clock: Clock::new(),
            servers,
            clients,
            ws_nodes,
            node_to_ws,
            home,
            domain,
            pserver,
            bindings: HashMap::new(),
            faults: None,
            retry: RetryPolicy::standard(config.costs.rpc_timeout),
            // Jitter stream seeded independently of the main rng: backoff
            // draws must not perturb handshake nonce generation.
            retry_rng: SimRng::seeded(config.seed ^ 0x9e37_79b9_7f4a_7c15),
            call_stats: CallStats::default(),
            next_token: 0,
            config,
            next_volume: 1,
            surrogates: HashMap::new(),
            monitor: None,
        };

        // Root volume: everyone may read and insert; nobody but explicit
        // grants may administer.
        let mut root_acl = AccessList::new();
        root_acl.grant("anyuser", Rights::ALL.minus(Rights::ADMINISTER));
        sys.create_volume("vice.root", "/vice", ServerId(0), root_acl)
            .expect("fresh system");
        // Standard skeleton.
        sys.admin_mkdir_p("/vice/usr").expect("fresh system");
        sys.admin_mkdir_p("/vice/tmp").expect("fresh system");
        for arch in ["sun", "vax", "ibmpc"] {
            sys.admin_mkdir_p(&format!("/vice/unix/{arch}/bin"))
                .expect("fresh system");
            sys.admin_mkdir_p(&format!("/vice/unix/{arch}/lib"))
                .expect("fresh system");
        }
        sys
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of workstations.
    pub fn workstation_count(&self) -> usize {
        self.clients.len()
    }

    /// Number of servers (== clusters).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The first workstation of the given cluster.
    pub fn workstation_in_cluster(&self, cluster: u32) -> WsId {
        (cluster * self.config.workstations_per_cluster) as WsId
    }

    /// All workstations of the given cluster.
    pub fn workstations_in_cluster(&self, cluster: u32) -> Vec<WsId> {
        let start = self.workstation_in_cluster(cluster);
        (start..start + self.config.workstations_per_cluster as usize).collect()
    }

    /// The global clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A workstation's local virtual time.
    pub fn ws_time(&self, ws: WsId) -> SimTime {
        self.clients[ws].now()
    }

    /// Advances a workstation's local time (think time).
    pub fn advance_ws(&mut self, ws: WsId, to: SimTime) {
        self.clients[ws].advance_to(to);
        self.clock.advance_to(to);
    }

    /// Direct read access to a workstation's Venus (for metrics/tests).
    pub fn venus(&self, ws: WsId) -> &Venus {
        &self.clients[ws]
    }

    /// Mutable Venus access (e.g. installing user symlinks in examples).
    pub fn venus_mut(&mut self, ws: WsId) -> &mut Venus {
        &mut self.clients[ws]
    }

    /// Direct read access to a server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0 as usize]
    }

    /// Total calls of a kind served across all servers.
    pub fn total_server_calls_of(&self, kind: &str) -> u64 {
        self.servers.iter().map(|s| s.stats().calls_of(kind)).sum()
    }

    /// Snapshot of all measurements, with utilization computed over
    /// `[0, now]`.
    pub fn metrics(&self) -> SystemMetrics {
        let at = self.clock.now();
        let mut call_mix = itc_sim::Counter::new();
        let servers = self
            .servers
            .iter()
            .map(|s| {
                let calls = s.stats().histogram();
                call_mix.merge(&calls);
                ServerMetrics {
                    cpu: s.cpu().report(at),
                    disk: s.disk().report(at),
                    calls,
                    callback_promises: s.callback_promises(),
                }
            })
            .collect();
        let mut cache = crate::venus::CacheStats::default();
        let mut venus = crate::venus::VenusStats::default();
        for c in &self.clients {
            merge_cache(&mut cache, c.cache().stats());
            merge_venus(&mut venus, c.stats());
        }
        SystemMetrics {
            at,
            servers,
            call_mix,
            cache,
            venus,
        }
    }

    // ------------------------------------------------------------------
    // Administration: users and groups
    // ------------------------------------------------------------------

    /// Registers a user, replicating the protection database to every
    /// server (charged to their CPUs).
    pub fn add_user(&mut self, name: &str, password: &str) -> Result<(), SystemError> {
        self.pserver
            .add_user(name, password)
            .map_err(|e| SystemError::Domain(e.to_string()))?;
        self.charge_protection_replication();
        Ok(())
    }

    /// Creates a group.
    pub fn add_group(&mut self, name: &str) -> Result<(), SystemError> {
        self.pserver
            .add_group(name)
            .map_err(|e| SystemError::Domain(e.to_string()))?;
        self.charge_protection_replication();
        Ok(())
    }

    /// Adds a member (user or group) to a group.
    pub fn add_member(&mut self, group: &str, member: &str) -> Result<(), SystemError> {
        self.pserver
            .add_member(group, member)
            .map_err(|e| SystemError::Domain(e.to_string()))?;
        self.charge_protection_replication();
        Ok(())
    }

    /// Removes a member from a group.
    pub fn remove_member(&mut self, group: &str, member: &str) -> Result<(), SystemError> {
        self.pserver
            .remove_member(group, member)
            .map_err(|e| SystemError::Domain(e.to_string()))?;
        self.charge_protection_replication();
        Ok(())
    }

    /// The slow revocation path (experiment E12): strips `user` from every
    /// group and waits for the update to reach every replica. Returns the
    /// virtual time at which the last replica applied it.
    pub fn revoke_via_groups(&mut self, user: &str) -> SimTime {
        let start = self.clock.now();
        let (_job, _removed) = self.pserver.revoke_all_memberships(user);
        let done = self.charge_protection_replication_from(start);
        self.clock.advance_to(done);
        done
    }

    /// Charges one protection-database update message to every server,
    /// starting now. Returns the completion time of the slowest replica.
    fn charge_protection_replication(&mut self) -> SimTime {
        let start = self.clock.now();
        let done = self.charge_protection_replication_from(start);
        self.clock.advance_to(done);
        done
    }

    fn charge_protection_replication_from(&mut self, start: SimTime) -> SimTime {
        let costs = self.kernel.costs().clone();
        // The protection server lives alongside server 0 and "coordinates
        // the updating of the database at all sites" — pushing to one
        // replica at a time and waiting for each acknowledgment, which is
        // why Section 3.4 calls this path "unacceptably slow in
        // emergencies" and why negative rights exist.
        let origin = self.servers[0].node();
        let mut t = start;
        for s in &self.servers {
            let lat = costs.net_latency(self.network.hops(origin, s.node()));
            let arrive = t + lat + costs.net_transfer(256);
            let applied = s.cpu().acquire(arrive, costs.srv_cpu_per_call);
            // Acknowledgment returns before the next site is contacted.
            t = applied + lat;
        }
        t
    }

    // ------------------------------------------------------------------
    // Administration: volumes and location
    // ------------------------------------------------------------------

    fn alloc_volume_id(&mut self) -> VolumeId {
        let id = VolumeId(self.next_volume);
        self.next_volume += 1;
        id
    }

    /// Creates a volume mounted at `mount` on `server`, creating a stub
    /// directory at the mount point in the enclosing volume (the
    /// prototype's "location database ... represented by stub directories",
    /// Section 3.5.2) and registering the custodianship in every server's
    /// location database replica.
    pub fn create_volume(
        &mut self,
        name: &str,
        mount: &str,
        server: ServerId,
        root_acl: AccessList,
    ) -> Result<VolumeId, SystemError> {
        if server.0 as usize >= self.servers.len() {
            return Err(SystemError::BadId(format!("server {}", server.0)));
        }
        // Stub directory in the enclosing volume (if any).
        if mount != "/vice" {
            self.admin_mkdir_p(mount)?;
        }
        let id = self.alloc_volume_id();
        let vol = Volume::new(id, name, mount, root_acl);
        self.servers[server.0 as usize].add_volume(vol);
        for s in &mut self.servers {
            s.location_mut().assign(mount, server);
        }
        Ok(id)
    }

    /// Convenience: a user's home volume at `/vice/usr/<user>` in the
    /// given cluster's server, owner-all + anyuser-read ACL, as the paper
    /// describes for "file subtrees of individual users".
    pub fn create_user_volume(
        &mut self,
        user: &str,
        cluster: u32,
    ) -> Result<VolumeId, SystemError> {
        let mut acl = AccessList::new();
        acl.grant(user, Rights::ALL);
        acl.grant("anyuser", Rights::READ_ONLY);
        self.create_volume(
            &format!("user.{user}"),
            &format!("/vice/usr/{user}"),
            ServerId(cluster),
            acl,
        )
    }

    /// Moves the volume mounted at `mount` to another server, updating
    /// every location-database replica. The files are "unavailable during
    /// the change" (Section 3.1); the returned time is when the move
    /// completed.
    pub fn move_volume(&mut self, mount: &str, to: ServerId) -> Result<SimTime, SystemError> {
        let from = self
            .location_of(mount)
            .ok_or_else(|| SystemError::Volume(format!("no volume at {mount}")))?;
        if from == to {
            return Ok(self.clock.now());
        }
        let vid = self.servers[from.0 as usize]
            .volumes()
            .iter()
            .find(|v| v.mount() == mount && !v.is_read_only())
            .map(Volume::id)
            .ok_or_else(|| SystemError::Volume(format!("no writable volume at {mount}")))?;
        let vol = self.servers[from.0 as usize]
            .take_volume(vid)
            .expect("found above");

        // Time: ship the volume's bytes across the network and update every
        // location replica.
        let costs = self.kernel.costs().clone();
        let bytes = vol.used_bytes();
        let start = self.clock.now();
        let hops = self
            .network
            .hops(self.servers[from.0 as usize].node(), self.servers[to.0 as usize].node());
        let shipped = start + costs.net_latency(hops) + costs.net_transfer(bytes);
        let done = self.servers[to.0 as usize]
            .disk()
            .acquire(shipped, costs.disk_transfer(bytes));
        self.servers[to.0 as usize].add_volume(vol);
        for s in &mut self.servers {
            s.location_mut().reassign(mount, to);
        }
        let repl_done = self.charge_protection_replication_from(done);
        self.clock.advance_to(repl_done);
        Ok(repl_done)
    }

    /// Clones the volume at `mount` and installs the read-only replica on
    /// each of `sites`, registering them in every location replica — the
    /// Section 3.2 mechanism for system binaries. Re-running it refreshes
    /// existing replicas atomically (the "orderly release").
    pub fn replicate_readonly(
        &mut self,
        mount: &str,
        sites: &[ServerId],
    ) -> Result<(), SystemError> {
        let owner = self
            .location_of(mount)
            .ok_or_else(|| SystemError::Volume(format!("no volume at {mount}")))?;
        let src_id = self.servers[owner.0 as usize]
            .volumes()
            .iter()
            .find(|v| v.mount() == mount && !v.is_read_only())
            .map(Volume::id)
            .ok_or_else(|| SystemError::Volume(format!("no writable volume at {mount}")))?;

        for &site in sites {
            if site == owner {
                continue;
            }
            let clone_id = self.alloc_volume_id();
            let src_server = &mut self.servers[owner.0 as usize];
            let clone = src_server
                .volume_mut(src_id)
                .expect("source volume")
                .clone_readonly(clone_id);

            // Replace an existing replica of this mount, else install.
            let dst = &mut self.servers[site.0 as usize];
            let existing = dst
                .volumes()
                .iter()
                .find(|v| v.mount() == mount && v.is_read_only())
                .map(Volume::id);
            if let Some(old) = existing {
                dst.take_volume(old);
            }
            dst.add_volume(clone);
            for s in &mut self.servers {
                s.location_mut().add_replica(mount, site);
            }
        }
        Ok(())
    }

    /// The custodian of `path` per the (replicated) location database.
    pub fn location_of(&self, path: &str) -> Option<ServerId> {
        self.servers[0].location().custodian_of(path)
    }

    /// A reference to the location database replica of server 0 (all
    /// replicas are identical) for size measurements (E14).
    pub fn location_db(&self) -> &LocationDb {
        self.servers[0].location()
    }

    // ------------------------------------------------------------------
    // Administration: direct (untimed) content manipulation
    // ------------------------------------------------------------------

    /// Creates directories along `vice_path` directly in the covering
    /// volumes — an operator action outside the measured workload (used to
    /// provision skeleton directories and preload workload trees).
    pub fn admin_mkdir_p(&mut self, vice_path: &str) -> Result<(), SystemError> {
        let comps: Vec<String> = vice_path
            .split('/')
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        let mut prefix = String::new();
        for comp in comps {
            prefix.push('/');
            prefix.push_str(&comp);
            if prefix == "/vice" {
                continue;
            }
            let Some(owner) = self.location_of(&prefix) else {
                return Err(SystemError::Volume(format!("no custodian for {prefix}")));
            };
            let srv = &mut self.servers[owner.0 as usize];
            // Find the hosting writable volume.
            let Some(vol) = srv
                .volumes()
                .iter()
                .filter(|v| v.covers(&prefix) && !v.is_read_only())
                .max_by_key(|v| v.mount().len())
                .map(Volume::id)
            else {
                return Err(SystemError::Volume(format!("no volume hosts {prefix}")));
            };
            let vol = srv.volume_mut(vol).expect("just found");
            let internal = vol.internal_path(&prefix).expect("covers");
            if internal != "/" && !vol.fs().exists(&internal) {
                vol.mkdir_inherit(&internal, 0, 0)
                    .map_err(|e| SystemError::Volume(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Installs a file directly in Vice (operator provisioning, e.g.
    /// populating `/vice/unix/sun/bin` with system binaries before a run).
    pub fn admin_install_file(
        &mut self,
        vice_path: &str,
        data: Vec<u8>,
    ) -> Result<(), SystemError> {
        let (dir, _) = itc_unixfs::dirname_basename(vice_path)
            .map_err(|e| SystemError::Volume(e.to_string()))?;
        self.admin_mkdir_p(&dir)?;
        let owner = self
            .location_of(vice_path)
            .ok_or_else(|| SystemError::Volume(format!("no custodian for {vice_path}")))?;
        let srv = &mut self.servers[owner.0 as usize];
        let vol_id = srv
            .volumes()
            .iter()
            .filter(|v| v.covers(vice_path) && !v.is_read_only())
            .max_by_key(|v| v.mount().len())
            .map(Volume::id)
            .ok_or_else(|| SystemError::Volume(format!("no volume hosts {vice_path}")))?;
        let vol = srv.volume_mut(vol_id).expect("just found");
        let internal = vol.internal_path(vice_path).expect("covers");
        vol.store(&internal, 0, 0, data)
            .map_err(|e| SystemError::Volume(e.to_string()))?;
        Ok(())
    }

    /// Sets a quota on the volume mounted at `mount`.
    pub fn set_volume_quota(&mut self, mount: &str, bytes: Option<u64>) -> Result<(), SystemError> {
        let owner = self
            .location_of(mount)
            .ok_or_else(|| SystemError::Volume(format!("no volume at {mount}")))?;
        let srv = &mut self.servers[owner.0 as usize];
        let vid = srv
            .volumes()
            .iter()
            .find(|v| v.mount() == mount && !v.is_read_only())
            .map(Volume::id)
            .ok_or_else(|| SystemError::Volume(format!("no writable volume at {mount}")))?;
        srv.volume_mut(vid).expect("found").set_quota(bytes);
        Ok(())
    }

    /// Takes the volume at `mount` offline or online.
    pub fn set_volume_online(&mut self, mount: &str, online: bool) -> Result<(), SystemError> {
        let owner = self
            .location_of(mount)
            .ok_or_else(|| SystemError::Volume(format!("no volume at {mount}")))?;
        let srv = &mut self.servers[owner.0 as usize];
        let vid = srv
            .volumes()
            .iter()
            .find(|v| v.mount() == mount && !v.is_read_only())
            .map(Volume::id)
            .ok_or_else(|| SystemError::Volume(format!("no writable volume at {mount}")))?;
        srv.volume_mut(vid).expect("found").set_online(online);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sessions
    // ------------------------------------------------------------------

    /// Logs `user` in at workstation `ws`: derives the key from the
    /// password exactly as the real Venus would and verifies it against
    /// Vice by establishing the first authenticated binding. A wrong
    /// password fails here, during the mutual handshake.
    pub fn login(&mut self, ws: WsId, user: &str, password: &str) -> Result<(), SystemError> {
        let key = derive_key(password, user);
        self.clients[ws].set_session(user, key);
        // Establish (and thereby verify) the binding to the home server.
        let node = self.ws_nodes[ws];
        let home = self.home[&node];
        let at = self.clients[ws].now();
        let outcome = {
            let ItcSystem {
                servers,
                network,
                kernel,
                clock,
                bindings,
                domain,
                rng,
                home: home_map,
                monitor,
                faults,
                retry,
                retry_rng,
                call_stats,
                next_token,
                ..
            } = self;
            let mut pending = Vec::new();
            let mut t = SystemTransport {
                servers,
                monitor,
                network,
                kernel,
                clock,
                bindings,
                domain,
                rng,
                home: home_map,
                pending: &mut pending,
                faults,
                retry,
                retry_rng,
                call_stats,
                next_token,
            };
            t.ensure_binding(node, user, key, home, at)
        };
        match outcome {
            Ok(ready) => {
                self.clients[ws].advance_to(ready);
                self.clock.advance_to(ready);
                Ok(())
            }
            Err(e) => {
                self.clients[ws].clear_session();
                Err(SystemError::AuthFailed(e))
            }
        }
    }

    /// Ends the session at a workstation, flushing any deferred writes
    /// first (an orderly logout must not strand the user's edits). The
    /// cache stays — it belongs to the machine.
    pub fn logout(&mut self, ws: WsId) {
        if self.clients[ws].dirty_count() > 0 {
            // Best effort: a failure here (e.g. quota) leaves the entries
            // dirty, exactly as a real Venus would.
            let _ = self.with_venus(ws, |v, t| v.flush_all(t));
        }
        let node = self.ws_nodes[ws];
        self.clients[ws].clear_session();
        // Bindings are per-user connections: drop them.
        self.bindings.retain(|(n, _), _| *n != node);
    }

    // ------------------------------------------------------------------
    // File operations (the workstation system-call surface)
    // ------------------------------------------------------------------

    fn with_venus<R>(
        &mut self,
        ws: WsId,
        f: impl FnOnce(&mut Venus, &mut SystemTransport<'_>) -> Result<R, VenusError>,
    ) -> Result<R, SystemError> {
        let ItcSystem {
            servers,
            clients,
            network,
            kernel,
            clock,
            bindings,
            domain,
            rng,
            home,
            monitor,
            faults,
            retry,
            retry_rng,
            call_stats,
            next_token,
            ..
        } = self;
        let mut pending = Vec::new();
        let mut transport = SystemTransport {
            servers,
            monitor,
            network,
            kernel,
            clock,
            bindings,
            domain,
            rng,
            home,
            pending: &mut pending,
            faults,
            retry,
            retry_rng,
            call_stats,
            next_token,
        };
        let venus = &mut clients[ws];
        // Deferred writes whose deadline has passed flush before the next
        // operation proceeds.
        let result = venus
            .flush_due(&mut transport)
            .and_then(|_| f(venus, &mut transport));
        clock.advance_to(venus.now());
        // Deliver callback breaks to the other workstations.
        let kernel = &self.kernel;
        for b in pending {
            let Some(&target_ws) = self.node_to_ws.get(&b.to_ws) else {
                continue;
            };
            let from_node = self.servers[b.from_server.0 as usize].node();
            let _arrival = kernel.one_way(&self.network, from_node, b.to_ws, b.sent_at, 160);
            self.clients[target_ws].on_callback_break(&b.path);
        }
        result.map_err(SystemError::Venus)
    }

    /// Opens a file for reading; returns a handle.
    pub fn open_read(&mut self, ws: WsId, path: &str) -> Result<u64, SystemError> {
        self.with_venus(ws, |v, t| v.open_read(t, path))
    }

    /// Opens (creating) a file for writing; returns a handle.
    pub fn open_write(&mut self, ws: WsId, path: &str) -> Result<u64, SystemError> {
        self.with_venus(ws, |v, t| v.open_write(t, path))
    }

    /// Reads through a handle (no server traffic).
    pub fn read(&self, ws: WsId, handle: u64) -> Result<Vec<u8>, SystemError> {
        self.clients[ws]
            .read(handle)
            .map(<[u8]>::to_vec)
            .map_err(SystemError::Venus)
    }

    /// Writes through a handle (no server traffic until close).
    pub fn write(&mut self, ws: WsId, handle: u64, data: Vec<u8>) -> Result<(), SystemError> {
        self.clients[ws].write(handle, data).map_err(SystemError::Venus)
    }

    /// Closes a handle, storing back to Vice if it was modified.
    pub fn close(&mut self, ws: WsId, handle: u64) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.close(t, handle))
    }

    /// Whole-file read convenience.
    pub fn fetch(&mut self, ws: WsId, path: &str) -> Result<Vec<u8>, SystemError> {
        self.with_venus(ws, |v, t| v.fetch_file(t, path))
    }

    /// Whole-file write convenience.
    pub fn store(&mut self, ws: WsId, path: &str, data: Vec<u8>) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.store_file(t, path, data))
    }

    /// `stat(2)`.
    pub fn stat(&mut self, ws: WsId, path: &str) -> Result<VStatus, SystemError> {
        self.with_venus(ws, |v, t| v.stat(t, path))
    }

    /// Directory listing.
    pub fn readdir(
        &mut self,
        ws: WsId,
        path: &str,
    ) -> Result<Vec<(String, EntryKind)>, SystemError> {
        self.with_venus(ws, |v, t| v.readdir(t, path))
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, ws: WsId, path: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.mkdir(t, path))
    }

    /// Creates a directory and any missing ancestors (client-driven: one
    /// MakeDir per missing level).
    pub fn mkdir_p(&mut self, ws: WsId, path: &str) -> Result<(), SystemError> {
        let comps: Vec<String> = path
            .split('/')
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        let mut prefix = String::new();
        for comp in comps {
            prefix.push('/');
            prefix.push_str(&comp);
            if prefix == "/vice" {
                continue;
            }
            match self.mkdir(ws, &prefix) {
                Ok(())
                | Err(SystemError::Venus(VenusError::Vice(ViceError::AlreadyExists(_)))) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Removes a file or symlink.
    pub fn unlink(&mut self, ws: WsId, path: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.unlink(t, path))
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, ws: WsId, path: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.rmdir(t, path))
    }

    /// Renames within one space.
    pub fn rename(&mut self, ws: WsId, from: &str, to: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.rename(t, from, to))
    }

    /// Creates a symbolic link.
    pub fn symlink(&mut self, ws: WsId, path: &str, target: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.symlink(t, path, target))
    }

    /// Reads a directory's access list.
    pub fn get_acl(&mut self, ws: WsId, path: &str) -> Result<AccessList, SystemError> {
        self.with_venus(ws, |v, t| v.get_acl(t, path))
    }

    /// Replaces a directory's access list (requires ADMINISTER rights).
    pub fn set_acl(&mut self, ws: WsId, path: &str, acl: AccessList) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.set_acl(t, path, acl))
    }

    /// Acquires an advisory lock.
    pub fn lock(&mut self, ws: WsId, path: &str, exclusive: bool) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.lock(t, path, exclusive))
    }

    /// Releases an advisory lock.
    pub fn unlock(&mut self, ws: WsId, path: &str) -> Result<(), SystemError> {
        self.with_venus(ws, |v, t| v.unlock(t, path))
    }

    /// Classifies a path at a workstation without performing any I/O
    /// (exposes the Figure 3-2 name-space logic for examples/tests).
    pub fn classify(&self, ws: WsId, path: &str) -> Result<Space, SystemError> {
        self.clients[ws]
            .namespace()
            .classify(path, true)
            .map_err(|e| SystemError::Venus(VenusError::Local(e)))
    }
}

impl ItcSystem {
    /// Takes an entire server machine down or up (the availability goal:
    /// "temporary loss of service to small groups of users" only).
    pub fn set_server_online(&mut self, id: ServerId, online: bool) {
        self.servers[id.0 as usize].set_online(online);
    }

    // ------------------------------------------------------------------
    // Fault injection and recovery
    // ------------------------------------------------------------------

    /// Installs a deterministic fault plan. Message faults apply to every
    /// subsequent Vice call; scheduled crashes/restarts fire as virtual
    /// time passes them.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Counters of faults the installed plan has injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(FaultPlan::stats).unwrap_or_default()
    }

    /// Counters of what the RPC retry machinery did across all calls.
    pub fn call_stats(&self) -> CallStats {
        self.call_stats
    }

    /// Replaces the retry/backoff policy for subsequent calls.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry/backoff policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Crashes a server immediately: it goes offline and loses all
    /// in-memory state (callback promises, replay cache, locks), exactly
    /// what a reboot of the real machine would lose.
    pub fn crash_server(&mut self, id: ServerId) {
        self.servers[id.0 as usize].crash();
    }

    /// Brings a crashed server back up, empty-handed: clients rediscover
    /// the new epoch on their next genuine exchange and revalidate.
    pub fn restart_server(&mut self, id: ServerId) {
        self.servers[id.0 as usize].restart();
    }

    /// A server's restart epoch (bumped by every crash).
    pub fn server_epoch(&self, id: ServerId) -> u64 {
        self.servers[id.0 as usize].epoch()
    }

    /// Applies any scheduled crashes/restarts due at the current virtual
    /// time. The transport also polls the schedule before every call, so
    /// this is only needed when a test advances time without traffic and
    /// wants to observe server state directly.
    pub fn run_fault_schedule(&mut self) {
        let now = self.clock.now();
        if let Some(f) = self.faults.as_mut() {
            for s in f.due_crashes(now) {
                self.servers[s as usize].crash();
            }
            for s in f.due_restarts(now) {
                self.servers[s as usize].restart();
            }
        }
    }

    // ------------------------------------------------------------------
    // Monitoring and rebalancing (Section 3.6)
    // ------------------------------------------------------------------

    /// Starts recording per-subtree, per-origin-cluster traffic.
    pub fn enable_monitoring(&mut self) {
        if self.monitor.is_none() {
            self.monitor = Some(TrafficMonitor::new());
        }
    }

    /// The monitor, if enabled.
    pub fn monitor(&self) -> Option<&TrafficMonitor> {
        self.monitor.as_ref()
    }

    /// Fraction of monitored calls that crossed a bridge to a custodian in
    /// another cluster.
    pub fn cross_cluster_fraction(&self) -> f64 {
        match &self.monitor {
            Some(m) => {
                let loc = self.servers[0].location();
                m.cross_cluster_fraction(|s| loc.custodian_of(s))
            }
            None => 0.0,
        }
    }

    /// Volume-move recommendations from the monitor (the paper insists "a
    /// human operator will initiate the actual reassignment" — callers
    /// apply them with [`ItcSystem::move_volume`]).
    pub fn rebalancing_recommendations(&self) -> Vec<crate::monitor::MoveRecommendation> {
        match &self.monitor {
            Some(m) => {
                let loc = self.servers[0].location();
                m.recommendations(|s| loc.custodian_of(s), |s| s != "/vice")
            }
            None => Vec::new(),
        }
    }

    /// Clears monitor observations (new measurement epoch).
    pub fn reset_monitoring(&mut self) {
        if let Some(m) = self.monitor.as_mut() {
            m.reset();
        }
    }

    // ------------------------------------------------------------------
    // Write-back policy (E16)
    // ------------------------------------------------------------------

    /// Flushes all deferred writes at a workstation immediately.
    pub fn flush_workstation(&mut self, ws: WsId) -> Result<usize, SystemError> {
        self.with_venus(ws, |v, t| v.flush_all(t))
    }

    /// Crashes a workstation: unflushed deferred writes are lost and the
    /// cache is wiped. Returns the number of lost updates. (Under
    /// store-on-close this is always zero — the paper's point.)
    pub fn crash_workstation(&mut self, ws: WsId) -> usize {
        let node = self.ws_nodes[ws];
        self.bindings.retain(|(n, _), _| *n != node);
        let lost = self.clients[ws].crash();
        self.clients[ws].clear_session();
        lost
    }

    /// Dirty (unflushed) files at a workstation.
    pub fn dirty_count(&self, ws: WsId) -> usize {
        self.clients[ws].dirty_count()
    }

    // ------------------------------------------------------------------
    // Surrogate service for low-function workstations (Section 3.3)
    // ------------------------------------------------------------------

    /// Enables the surrogate server on a host workstation. The host must
    /// be logged in; it authenticates to Vice on the PCs' behalf.
    pub fn enable_surrogate(&mut self, host: WsId) -> Result<(), SystemError> {
        if self.clients[host].current_user().is_none() {
            return Err(SystemError::BadId(format!(
                "workstation {host} has no session to lend to PCs"
            )));
        }
        self.surrogates.entry(host).or_default();
        Ok(())
    }

    /// Attaches a PC to a host's surrogate; returns its id.
    pub fn attach_pc(&mut self, host: WsId) -> Result<PcId, SystemError> {
        self.surrogates
            .get_mut(&host)
            .map(Surrogate::attach_pc)
            .ok_or_else(|| SystemError::BadId(format!("no surrogate on workstation {host}")))
    }

    /// The surrogate state of a host (for metrics/tests).
    pub fn surrogate(&self, host: WsId) -> Option<&Surrogate> {
        self.surrogates.get(&host)
    }

    /// Runs one PC request through the surrogate: cheap-LAN hop in, a
    /// service charge on the host, the host's own Venus (so all PCs share
    /// the host's cache), and the cheap-LAN hop back.
    fn pc_call<R>(
        &mut self,
        host: WsId,
        pc: PcId,
        request_bytes: u64,
        op: impl FnOnce(&mut ItcSystem) -> Result<R, SystemError>,
        reply_bytes: impl FnOnce(&R) -> u64,
    ) -> Result<R, SystemError> {
        let costs = self.config.costs.clone();
        let sur = self
            .surrogates
            .get(&host)
            .ok_or_else(|| SystemError::BadId(format!("no surrogate on workstation {host}")))?;
        let t_pc = sur
            .pc_time(pc)
            .ok_or_else(|| SystemError::BadId(format!("unknown pc {}", pc.0)))?;

        // Request crosses the cheap LAN and queues behind the host's
        // current work.
        let arrival =
            t_pc.max(self.ws_time(host)) + costs.pc_net_latency + costs.pc_transfer(request_bytes);
        self.advance_ws(host, arrival + costs.surrogate_cpu_per_call);

        let result = op(self)?;
        let out = reply_bytes(&result);
        let done = self.ws_time(host) + costs.pc_net_latency + costs.pc_transfer(out);
        self.surrogates
            .get_mut(&host)
            .expect("checked above")
            .record(pc, request_bytes, out, done)
            .map_err(SystemError::BadId)?;
        Ok(result)
    }

    /// PC whole-file read through the surrogate.
    pub fn pc_fetch(&mut self, host: WsId, pc: PcId, path: &str) -> Result<Vec<u8>, SystemError> {
        self.pc_call(host, pc, 128, |sys| sys.fetch(host, path), |d| d.len() as u64)
    }

    /// PC whole-file write through the surrogate.
    pub fn pc_store(
        &mut self,
        host: WsId,
        pc: PcId,
        path: &str,
        data: Vec<u8>,
    ) -> Result<(), SystemError> {
        let len = data.len() as u64;
        self.pc_call(host, pc, 128 + len, |sys| sys.store(host, path, data), |_| 64)
    }

    /// PC stat through the surrogate.
    pub fn pc_stat(&mut self, host: WsId, pc: PcId, path: &str) -> Result<VStatus, SystemError> {
        self.pc_call(host, pc, 128, |sys| sys.stat(host, path), |_| 128)
    }

    /// PC directory listing through the surrogate.
    pub fn pc_readdir(
        &mut self,
        host: WsId,
        pc: PcId,
        path: &str,
    ) -> Result<Vec<(String, EntryKind)>, SystemError> {
        self.pc_call(
            host,
            pc,
            128,
            |sys| sys.readdir(host, path),
            |l| 32 * l.len() as u64 + 16,
        )
    }
}

/// The transport the system hands to Venus: real bindings over the
/// simulated network, with timing charged through the kernel.
struct SystemTransport<'a> {
    servers: &'a mut Vec<Server>,
    monitor: &'a mut Option<TrafficMonitor>,
    network: &'a Network,
    kernel: &'a TimingKernel,
    clock: &'a Clock,
    bindings: &'a mut HashMap<(NodeId, ServerId), Binding>,
    domain: &'a RefCell<ProtectionDomain>,
    rng: &'a mut SimRng,
    home: &'a HashMap<NodeId, ServerId>,
    pending: &'a mut Vec<PendingBreak>,
    faults: &'a mut Option<FaultPlan>,
    retry: &'a RetryPolicy,
    retry_rng: &'a mut SimRng,
    call_stats: &'a mut CallStats,
    next_token: &'a mut u64,
}

impl SystemTransport<'_> {
    /// Ensures an authenticated binding exists, running (and charging) the
    /// mutual handshake on first contact. Returns the time at which the
    /// binding is usable.
    fn ensure_binding(
        &mut self,
        ws: NodeId,
        user: &str,
        client_key: Key,
        server: ServerId,
        at: SimTime,
    ) -> Result<SimTime, String> {
        if self.bindings.contains_key(&(ws, server)) {
            return Ok(at);
        }
        let srv = &self.servers[server.0 as usize];
        // Vice looks the user's key up in its protection database; an
        // unknown user cannot bind at all.
        let server_key = self
            .domain
            .borrow()
            .auth_key(user)
            .map_err(|e| e.to_string())?;
        let nonces = (self.rng.next_u64(), self.rng.next_u64());
        let binding = establish(user, ws, srv.node(), client_key, server_key, nonces)
            .map_err(|e| e.to_string())?;
        let ready = self
            .kernel
            .handshake(self.network, ws, srv.node(), srv.cpu(), at);
        self.bindings.insert((ws, server), binding);
        self.clock.advance_to(ready);
        Ok(ready)
    }

    /// Fires any scheduled crashes/restarts due at `now`. Crashes apply
    /// before restarts, so a crash and a later restart both passed between
    /// two calls leave the server up but with a bumped epoch.
    fn apply_lifecycle(&mut self, now: SimTime) {
        if let Some(f) = self.faults.as_mut() {
            for s in f.due_crashes(now) {
                self.servers[s as usize].crash();
            }
            for s in f.due_restarts(now) {
                self.servers[s as usize].restart();
            }
        }
    }
}

impl ViceTransport for SystemTransport<'_> {
    fn call(
        &mut self,
        ws: NodeId,
        user: &str,
        key: Key,
        server: ServerId,
        req: &ViceRequest,
        at: SimTime,
    ) -> Result<(ViceReply, SimTime), String> {
        if server.0 as usize >= self.servers.len() {
            return Err(format!("unknown server {}", server.0));
        }
        // Scheduled crashes/restarts that have come due take effect before
        // anything else sees the server.
        self.apply_lifecycle(at);
        // A down server: the client burns the RPC timeout and synthesizes
        // an Unreachable error so Venus can fail over to a replica.
        if !self.servers[server.0 as usize].is_online() {
            let done = at + self.kernel.costs().rpc_timeout;
            self.clock.advance_to(done);
            return Ok((ViceReply::Error(ViceError::Unreachable(server.0)), done));
        }
        let mut at = self.ensure_binding(ws, user, key, server, at)?;

        // Frame the request with a per-call idempotency token. Every retry
        // of this logical call carries the same token, so a mutation whose
        // *reply* was lost is answered from the server's replay cache on
        // retry instead of being applied twice.
        *self.next_token += 1;
        let token = *self.next_token;
        let req_bytes = encode_request(req);
        let mut framed = Vec::with_capacity(8 + req_bytes.len());
        framed.extend_from_slice(&token.to_be_bytes());
        framed.extend_from_slice(&req_bytes);

        let policy = *self.retry;
        let costs = self.kernel.costs().clone();
        let kind = req.kind();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            self.call_stats.attempts += 1;
            if attempt > 1 {
                self.call_stats.retries += 1;
            }
            // Backoff waits may have carried us past a scheduled crash.
            self.apply_lifecycle(at);
            if !self.servers[server.0 as usize].is_online() {
                let done = at + policy.timeout;
                self.clock.advance_to(done);
                return Ok((ViceReply::Error(ViceError::Unreachable(server.0)), done));
            }

            // Request leg. The client always seals (its sequence number
            // advances); the network decides the fate of the sealed bytes.
            let req_fate = match self.faults.as_mut() {
                Some(f) => f.request_fault(server.0),
                None => MessageFault::Deliver,
            };
            let binding = self
                .bindings
                .get_mut(&(ws, server))
                .expect("ensured above");
            let sealed_req = binding.client_seal(&framed);
            let mut extra = SimTime::ZERO;
            match req_fate {
                MessageFault::Drop => {
                    self.call_stats.timeouts += 1;
                    at = at + policy.timeout;
                    if attempt >= policy.max_attempts {
                        self.call_stats.failures += 1;
                        self.clock.advance_to(at);
                        return Ok((ViceReply::Error(ViceError::TimedOut(server.0)), at));
                    }
                    at = at + policy.backoff(attempt, self.retry_rng);
                    continue;
                }
                MessageFault::Delay(d) => extra = extra + d,
                MessageFault::Deliver | MessageFault::Duplicate => {}
            }
            let opened = binding.server_open(&sealed_req).map_err(|e| e.to_string())?;

            // Server dispatch. Identity comes from the binding, never the
            // request.
            let auth_user = binding.server_user().to_string();
            let (token_bytes, body) = opened.split_at(8);
            let token_echo = u64::from_be_bytes(token_bytes.try_into().expect("framed above"));
            let srv = &mut self.servers[server.0 as usize];
            let mut cost = CallCost::default();
            let reply = match decode_request(body) {
                Ok(decoded) => {
                    if let Some(cached) = decoded
                        .is_mutation()
                        .then(|| srv.replay_lookup(ws, token_echo))
                        .flatten()
                    {
                        // A retry of a mutation the server already applied:
                        // answer from the replay cache, do not re-apply.
                        cached.clone()
                    } else {
                        let (reply, c) = srv.handle(&auth_user, ws, &decoded, at, &costs);
                        cost = c;
                        if decoded.is_mutation() {
                            srv.replay_record(ws, token_echo, reply.clone());
                        }
                        reply
                    }
                }
                Err(e) => ViceReply::Error(ViceError::BadRequest(e.to_string())),
            };
            let reply_plain = encode_reply(&reply);
            let sealed_reply = binding.server_seal(&reply_plain);

            // Reply leg.
            let reply_fate = match self.faults.as_mut() {
                Some(f) => f.reply_fault(server.0),
                None => MessageFault::Deliver,
            };
            match reply_fate {
                MessageFault::Drop => {
                    // The server did the work (and remembered the reply);
                    // the client never hears back.
                    self.call_stats.timeouts += 1;
                    at = at + policy.timeout;
                    if attempt >= policy.max_attempts {
                        self.call_stats.failures += 1;
                        self.clock.advance_to(at);
                        return Ok((ViceReply::Error(ViceError::TimedOut(server.0)), at));
                    }
                    at = at + policy.backoff(attempt, self.retry_rng);
                    continue;
                }
                MessageFault::Delay(d) => extra = extra + d,
                MessageFault::Deliver | MessageFault::Duplicate => {}
            }
            let reply_clear = binding.client_open(&sealed_reply).map_err(|e| e.to_string())?;
            if reply_fate == MessageFault::Duplicate {
                // Second copy of the same sealed reply: the channel's
                // sequence check discards it.
                if binding.client_open(&sealed_reply).is_err() {
                    self.call_stats.duplicates_ignored += 1;
                }
            }
            let reply = decode_reply(&reply_clear).map_err(|e| e.to_string())?;

            // Traffic monitoring (Section 3.6): attribute the call to the
            // covering custodianship subtree and the caller's cluster.
            if let Some(m) = self.monitor.as_mut() {
                if let Some((subtree, _)) = self.servers[0].location().lookup(req.path()) {
                    let origin = self.network.cluster_of(ws);
                    let subtree = subtree.to_string();
                    m.record(&subtree, origin.0);
                }
            }

            // Timing path.
            let spec = CallSpec {
                kind,
                request_bytes: req_bytes.len() as u64 + 40, // token + sealing overhead
                reply_bytes: reply_plain.len() as u64 + 40,
                server_cpu: cost.server_cpu,
                disk_bytes: cost.disk_bytes,
                lock_ipc: cost.lock_ipc,
            };
            let srv = &self.servers[server.0 as usize];
            let rt = self
                .kernel
                .round_trip(self.network, ws, srv.node(), srv.cpu(), srv.disk(), at, &spec);
            srv.record_call(kind, spec.request_bytes, spec.reply_bytes, rt.elapsed);
            let done = rt.completed_at + extra;
            self.clock.advance_to(done);

            // Collect any callback breaks this call generated.
            let srv = &mut self.servers[server.0 as usize];
            for (to_ws, brk) in srv.drain_breaks() {
                self.pending.push(PendingBreak {
                    from_server: server,
                    to_ws,
                    path: brk.path,
                    sent_at: done,
                });
            }
            return Ok((reply, done));
        }
    }

    fn epoch_of(&self, server: ServerId) -> u64 {
        self.servers
            .get(server.0 as usize)
            .map_or(0, Server::epoch)
    }

    fn nearest(&self, ws: NodeId, candidates: &[ServerId]) -> ServerId {
        *candidates
            .iter()
            .min_by_key(|s| {
                let node = self.servers[s.0 as usize].node();
                (self.network.hops(ws, node), s.0)
            })
            .expect("candidates non-empty")
    }

    fn home_server(&self, ws: NodeId) -> ServerId {
        self.home[&ws]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> ItcSystem {
        let mut s = ItcSystem::build(SystemConfig::prototype(2, 2));
        s.add_user("satya", "pw-satya").unwrap();
        s.add_user("howard", "pw-howard").unwrap();
        s
    }

    #[test]
    fn build_creates_topology_and_skeleton() {
        let s = sys();
        assert_eq!(s.server_count(), 2);
        assert_eq!(s.workstation_count(), 4);
        assert_eq!(s.location_of("/vice/anything"), Some(ServerId(0)));
        assert_eq!(s.workstation_in_cluster(1), 2);
    }

    #[test]
    fn store_then_fetch_round_trips() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.mkdir_p(0, "/vice/usr/satya").unwrap();
        s.store(0, "/vice/usr/satya/f.txt", b"hello vice".to_vec())
            .unwrap();
        assert_eq!(s.fetch(0, "/vice/usr/satya/f.txt").unwrap(), b"hello vice");
        // Time moved forward.
        assert!(s.now() > SimTime::ZERO);
    }

    #[test]
    fn wrong_password_fails_login() {
        let mut s = sys();
        let err = s.login(0, "satya", "wrong").unwrap_err();
        assert!(matches!(err, SystemError::AuthFailed(_)));
        // And no session remains.
        assert!(s.venus(0).current_user().is_none());
    }

    #[test]
    fn unknown_user_fails_login() {
        let mut s = sys();
        assert!(matches!(
            s.login(0, "ghost", "pw"),
            Err(SystemError::AuthFailed(_))
        ));
    }

    #[test]
    fn sharing_is_visible_across_workstations() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.login(2, "howard", "pw-howard").unwrap(); // other cluster
        s.mkdir_p(0, "/vice/usr/shared").unwrap();
        s.store(0, "/vice/usr/shared/note", b"v1".to_vec()).unwrap();
        assert_eq!(s.fetch(2, "/vice/usr/shared/note").unwrap(), b"v1");
        // An update by howard is seen by satya (timesharing semantics).
        s.store(2, "/vice/usr/shared/note", b"v2".to_vec()).unwrap();
        assert_eq!(s.fetch(0, "/vice/usr/shared/note").unwrap(), b"v2");
    }

    #[test]
    fn user_volume_routes_to_its_cluster_server() {
        let mut s = sys();
        s.create_user_volume("satya", 1).unwrap();
        assert_eq!(s.location_of("/vice/usr/satya/x"), Some(ServerId(1)));
        s.login(0, "satya", "pw-satya").unwrap();
        s.store(0, "/vice/usr/satya/f", b"data".to_vec()).unwrap();
        // The file physically lives on server 1.
        assert!(s.server(ServerId(1)).stats().calls_of("store") >= 1);
        assert_eq!(s.server(ServerId(0)).stats().calls_of("store"), 0);
    }

    #[test]
    fn permissions_enforced_against_authenticated_user() {
        let mut s = sys();
        s.create_user_volume("satya", 0).unwrap();
        s.login(0, "satya", "pw-satya").unwrap();
        s.login(1, "howard", "pw-howard").unwrap();
        s.store(0, "/vice/usr/satya/secret", b"mine".to_vec())
            .unwrap();
        // howard can read (anyuser has READ) but not write.
        assert_eq!(s.fetch(1, "/vice/usr/satya/secret").unwrap(), b"mine");
        let err = s
            .store(1, "/vice/usr/satya/secret", b"overwrite".to_vec())
            .unwrap_err();
        assert!(
            matches!(
                err,
                SystemError::Venus(VenusError::Vice(ViceError::PermissionDenied(_)))
            ),
            "{err:?}"
        );
    }

    #[test]
    fn second_open_hits_cache_in_prototype_mode() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.mkdir_p(0, "/vice/usr/satya").unwrap();
        s.store(0, "/vice/usr/satya/f", vec![7; 1000]).unwrap();
        let fetches_before = s.total_server_calls_of("fetch");
        let validates_before = s.total_server_calls_of("validate");
        let _ = s.fetch(0, "/vice/usr/satya/f").unwrap();
        // Check-on-open: no fetch, but one validation.
        assert_eq!(s.total_server_calls_of("fetch"), fetches_before);
        assert_eq!(s.total_server_calls_of("validate"), validates_before + 1);
        assert!(s.venus(0).cache().stats().hits >= 1);
    }

    #[test]
    fn callback_mode_hits_without_any_traffic() {
        let mut s = ItcSystem::build(SystemConfig::revised(1, 2));
        s.add_user("u", "pw").unwrap();
        s.login(0, "u", "pw").unwrap();
        s.mkdir_p(0, "/vice/usr/u").unwrap();
        s.store(0, "/vice/usr/u/f", vec![1; 100]).unwrap();
        let _ = s.fetch(0, "/vice/usr/u/f").unwrap();
        let total_before = s.metrics().total_calls();
        let _ = s.fetch(0, "/vice/usr/u/f").unwrap();
        // Valid promise: the second open generated zero server calls.
        assert_eq!(s.metrics().total_calls(), total_before);
    }

    #[test]
    fn callback_break_invalidates_other_caches() {
        let mut s = ItcSystem::build(SystemConfig::revised(1, 2));
        s.add_user("a", "pw").unwrap();
        s.add_user("b", "pw").unwrap();
        s.login(0, "a", "pw").unwrap();
        s.login(1, "b", "pw").unwrap();
        s.mkdir_p(0, "/vice/usr/shared").unwrap();
        s.store(0, "/vice/usr/shared/f", b"v1".to_vec()).unwrap();
        // b caches it.
        assert_eq!(s.fetch(1, "/vice/usr/shared/f").unwrap(), b"v1");
        // a updates: b's promise must break.
        s.store(0, "/vice/usr/shared/f", b"v2".to_vec()).unwrap();
        let entry_valid = s.venus(1).cache().peek("/vice/usr/shared/f").unwrap().valid;
        assert!(!entry_valid, "callback break should have invalidated b's copy");
        // And b's next open refetches the new contents.
        assert_eq!(s.fetch(1, "/vice/usr/shared/f").unwrap(), b"v2");
    }

    #[test]
    fn logout_drops_bindings_but_keeps_cache() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.mkdir_p(0, "/vice/usr/satya").unwrap();
        s.store(0, "/vice/usr/satya/f", b"x".to_vec()).unwrap();
        s.logout(0);
        assert!(s.venus(0).current_user().is_none());
        assert!(s.venus(0).cache().peek("/vice/usr/satya/f").is_some());
        // Operations now fail.
        assert!(matches!(
            s.fetch(0, "/vice/usr/satya/f"),
            Err(SystemError::Venus(VenusError::NotLoggedIn))
        ));
        // A new login works again.
        s.login(0, "howard", "pw-howard").unwrap();
        assert_eq!(s.fetch(0, "/vice/usr/satya/f").unwrap(), b"x");
    }

    #[test]
    fn quota_is_enforced_through_the_full_stack() {
        let mut s = sys();
        s.create_user_volume("satya", 0).unwrap();
        s.set_volume_quota("/vice/usr/satya", Some(1000)).unwrap();
        s.login(0, "satya", "pw-satya").unwrap();
        s.store(0, "/vice/usr/satya/a", vec![0; 800]).unwrap();
        let err = s.store(0, "/vice/usr/satya/b", vec![0; 300]).unwrap_err();
        assert!(matches!(
            err,
            SystemError::Venus(VenusError::Vice(ViceError::QuotaExceeded(_)))
        ));
    }

    #[test]
    fn offline_volume_surfaces_to_clients() {
        let mut s = sys();
        s.create_user_volume("satya", 0).unwrap();
        s.login(0, "satya", "pw-satya").unwrap();
        s.store(0, "/vice/usr/satya/f", b"x".to_vec()).unwrap();
        s.set_volume_online("/vice/usr/satya", false).unwrap();
        // A fresh workstation (cold cache) cannot read it.
        s.login(1, "howard", "pw-howard").unwrap();
        let err = s.fetch(1, "/vice/usr/satya/f").unwrap_err();
        assert!(matches!(
            err,
            SystemError::Venus(VenusError::Vice(ViceError::VolumeOffline(_)))
        ));
        s.set_volume_online("/vice/usr/satya", true).unwrap();
        assert_eq!(s.fetch(1, "/vice/usr/satya/f").unwrap(), b"x");
    }

    #[test]
    fn cross_cluster_access_works_with_hints() {
        let mut s = sys();
        s.create_user_volume("satya", 1).unwrap();
        s.login(0, "satya", "pw-satya").unwrap(); // cluster 0 ws
        s.store(0, "/vice/usr/satya/f", b"far".to_vec()).unwrap();
        assert_eq!(s.fetch(0, "/vice/usr/satya/f").unwrap(), b"far");
        // The home server answered a location query at least once.
        assert!(s.server(ServerId(0)).stats().calls_of("getcustodian") >= 1);
    }

    #[test]
    fn revocation_via_negative_rights_vs_groups() {
        let mut s = sys();
        s.add_group("team").unwrap();
        s.add_member("team", "howard").unwrap();
        // A volume whose ACL grants the team write access, and satya admin.
        let mut acl = AccessList::new();
        acl.grant("satya", Rights::ALL);
        acl.grant("team", Rights::READ | Rights::WRITE | Rights::INSERT | Rights::LOOKUP);
        s.create_volume("proj", "/vice/proj", ServerId(0), acl.clone())
            .unwrap();
        s.login(0, "satya", "pw-satya").unwrap();
        s.login(1, "howard", "pw-howard").unwrap();
        s.store(1, "/vice/proj/data", b"by howard".to_vec()).unwrap();

        // Rapid revocation: negative rights on the single custodian.
        let mut revoked = acl.clone();
        revoked.deny("howard", Rights::ALL);
        s.set_acl(0, "/vice/proj", revoked).unwrap();
        let err = s.store(1, "/vice/proj/data", b"again".to_vec()).unwrap_err();
        assert!(matches!(
            err,
            SystemError::Venus(VenusError::Vice(ViceError::PermissionDenied(_)))
        ));

        // Slow revocation: group removal propagates to all replicas.
        let before = s.now();
        let done = s.revoke_via_groups("howard");
        assert!(done >= before);
        assert!(!s
            .pserver
            .cps("howard")
            .contains(&"team".to_string()));
    }

    #[test]
    fn readonly_replication_serves_reads_locally() {
        let mut s = sys();
        // System binaries on server 0, replicated to server 1.
        s.admin_install_file("/vice/unix/sun/bin/cc", vec![9; 4000])
            .unwrap();
        s.replicate_readonly("/vice", &[ServerId(1)]).unwrap();
        s.login(2, "satya", "pw-satya").unwrap(); // cluster 1 workstation
        let data = s.fetch(2, "/vice/unix/sun/bin/cc").unwrap();
        assert_eq!(data.len(), 4000);
        // The fetch was served by the cluster-1 replica, not server 0.
        assert!(s.server(ServerId(1)).stats().calls_of("fetch") >= 1);
        assert_eq!(s.server(ServerId(0)).stats().calls_of("fetch"), 0);
    }

    #[test]
    fn volume_move_keeps_data_and_updates_location() {
        let mut s = sys();
        s.create_user_volume("satya", 0).unwrap();
        s.login(0, "satya", "pw-satya").unwrap();
        s.store(0, "/vice/usr/satya/f", b"before move".to_vec())
            .unwrap();
        s.move_volume("/vice/usr/satya", ServerId(1)).unwrap();
        assert_eq!(s.location_of("/vice/usr/satya/f"), Some(ServerId(1)));
        // A cold client reads it from the new home.
        s.login(2, "howard", "pw-howard").unwrap();
        assert_eq!(s.fetch(2, "/vice/usr/satya/f").unwrap(), b"before move");
    }

    #[test]
    fn heterogeneous_bin_paths_resolve_per_workstation() {
        let mut s = sys();
        s.admin_install_file("/vice/unix/sun/bin/cc", b"sun cc".to_vec())
            .unwrap();
        s.admin_install_file("/vice/unix/vax/bin/cc", b"vax cc".to_vec())
            .unwrap();
        s.login(0, "satya", "pw-satya").unwrap(); // ws 0: Sun
        s.login(1, "howard", "pw-howard").unwrap(); // ws 1: Vax
        assert_eq!(s.fetch(0, "/bin/cc").unwrap(), b"sun cc");
        assert_eq!(s.fetch(1, "/bin/cc").unwrap(), b"vax cc");
    }

    #[test]
    fn local_files_never_touch_servers() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        let calls_before = s.metrics().total_calls();
        s.store(0, "/tmp/scratch", b"temporary".to_vec()).unwrap();
        assert_eq!(s.fetch(0, "/tmp/scratch").unwrap(), b"temporary");
        assert_eq!(s.metrics().total_calls(), calls_before);
    }

    #[test]
    fn surrogate_serves_pcs_through_the_host_cache() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.mkdir_p(0, "/vice/usr/satya").unwrap();
        s.store(0, "/vice/usr/satya/report", vec![9; 40_000]).unwrap();

        s.enable_surrogate(0).unwrap();
        let pc1 = s.attach_pc(0).unwrap();
        let pc2 = s.attach_pc(0).unwrap();

        // First PC read: served from the host's cache (the host just
        // stored the file), so no new fetch reaches Vice.
        let fetches = s.total_server_calls_of("fetch");
        let data = s.pc_fetch(0, pc1, "/vice/usr/satya/report").unwrap();
        assert_eq!(data.len(), 40_000);
        assert_eq!(s.total_server_calls_of("fetch"), fetches);

        // The second PC shares the same cache.
        let data2 = s.pc_fetch(0, pc2, "/vice/usr/satya/report").unwrap();
        assert_eq!(data2.len(), 40_000);
        assert_eq!(s.total_server_calls_of("fetch"), fetches);

        // A PC write lands in Vice and is visible campus-wide.
        s.pc_store(0, pc1, "/vice/usr/satya/from-pc", b"dos file".to_vec())
            .unwrap();
        s.login(2, "howard", "pw-howard").unwrap();
        assert_eq!(s.fetch(2, "/vice/usr/satya/from-pc").unwrap(), b"dos file");

        // Accounting and timing happened.
        let st = s.surrogate(0).unwrap().stats_of(pc1).unwrap();
        assert_eq!(st.requests, 2);
        assert!(st.bytes_out >= 40_000);
        assert!(s.surrogate(0).unwrap().pc_time(pc1).unwrap() > SimTime::ZERO);
        // The cheap LAN is slow: 40 KB took over a second of transfer.
        let t1 = s.surrogate(0).unwrap().pc_time(pc1).unwrap();
        assert!(t1 > SimTime::from_secs(1), "{t1}");
    }

    #[test]
    fn surrogate_requires_a_session_and_valid_pc() {
        let mut s = sys();
        assert!(s.enable_surrogate(0).is_err(), "no session yet");
        s.login(0, "satya", "pw-satya").unwrap();
        s.enable_surrogate(0).unwrap();
        assert!(matches!(s.attach_pc(1), Err(SystemError::BadId(_))));
        let err = s.pc_fetch(0, PcId(77), "/vice/usr").unwrap_err();
        assert!(matches!(err, SystemError::BadId(_)));
    }

    #[test]
    fn locks_are_exclusive_across_workstations() {
        let mut s = sys();
        s.login(0, "satya", "pw-satya").unwrap();
        s.login(1, "howard", "pw-howard").unwrap();
        s.mkdir_p(0, "/vice/usr/shared").unwrap();
        s.store(0, "/vice/usr/shared/f", b"x".to_vec()).unwrap();
        s.lock(0, "/vice/usr/shared/f", true).unwrap();
        let err = s.lock(1, "/vice/usr/shared/f", true).unwrap_err();
        assert!(matches!(
            err,
            SystemError::Venus(VenusError::Vice(ViceError::LockConflict(_)))
        ));
        s.unlock(0, "/vice/usr/shared/f").unwrap();
        s.lock(1, "/vice/usr/shared/f", true).unwrap();
    }
}
