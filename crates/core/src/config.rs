//! System configuration: topology plus the design-choice knobs.
//!
//! Every ablation in the paper is one field here:
//!
//! | Field        | Prototype (1985)        | Revised implementation       |
//! |--------------|-------------------------|------------------------------|
//! | `validation` | check-on-open           | callback invalidation        |
//! | `traversal`  | server-side pathnames   | client-side, fid-like        |
//! | `structure`  | process per client      | single process + LWPs        |
//! | `cache`      | count-limited LRU       | space-limited LRU            |
//!
//! [`SystemConfig::prototype`] and [`SystemConfig::revised`] build the two
//! columns; experiments flip individual fields from there.

use itc_sim::costs::EncryptionMode;
use itc_sim::{Costs, ServerStructure, TraversalMode, ValidationMode};

/// Venus cache management policy (Section 3.5.1 / 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// The prototype: "Venus limits the total number of files in the cache
    /// rather than the total size of the cache, because the latter
    /// information is difficult to obtain from Unix."
    CountLru(usize),
    /// The revised design: "a space-limited cache management algorithm."
    SpaceLru(u64),
}

/// When modified files are transmitted to the custodian (Section 3.2:
/// "Changes to a cached file may be transmitted on close to the
/// corresponding custodian or deferred until a later time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// The paper's choice: "Virtue stores a file back when it is closed",
    /// adopted "to simplify recovery from workstation crashes" and to
    /// approximate timesharing visibility.
    StoreOnClose,
    /// The alternative the paper rejects: hold dirty files locally and
    /// flush them after the given delay (coalescing repeated writes). A
    /// workstation crash loses every unflushed update.
    Delayed(itc_sim::SimTime),
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of clusters (each gets one cluster server).
    pub clusters: u32,
    /// Workstations per cluster.
    pub workstations_per_cluster: u32,
    /// Cache validation scheme.
    pub validation: ValidationMode,
    /// Pathname traversal site.
    pub traversal: TraversalMode,
    /// Server process structure.
    pub structure: ServerStructure,
    /// Network encryption implementation.
    pub encryption: EncryptionMode,
    /// Venus cache policy.
    pub cache: CachePolicy,
    /// Write-back policy.
    pub write_policy: WritePolicy,
    /// The timing-cost table.
    pub costs: Costs,
    /// Seed for all randomness (nonces, workloads forked from it).
    pub seed: u64,
    /// Causal request tracing (spans, latency attribution, the anomaly
    /// flight recorder). Observation-only: enabling it changes no virtual
    /// timing, rng draw, or event ordering; off by default so the common
    /// path pays one branch per hop.
    pub tracing: bool,
    /// Batch callback breaks per recipient workstation: when a mutation
    /// invalidates several promises held by the same workstation (the file
    /// and its parent directory, say), send one break message carrying all
    /// the paths instead of one message per path, and charge the server's
    /// per-break CPU once per recipient instead of once per (recipient,
    /// path). Off by default — the prototype faithfully pays the per-path
    /// cost; the storm scenarios flip this on to show the knee move.
    pub callback_break_batching: bool,
}

impl SystemConfig {
    /// The prototype column: every design choice as deployed in 1985.
    pub fn prototype(clusters: u32, workstations_per_cluster: u32) -> SystemConfig {
        SystemConfig {
            clusters,
            workstations_per_cluster,
            validation: ValidationMode::CheckOnOpen,
            traversal: TraversalMode::ServerSide,
            structure: ServerStructure::ProcessPerClient,
            encryption: EncryptionMode::Hardware,
            cache: CachePolicy::CountLru(200),
            write_policy: WritePolicy::StoreOnClose,
            costs: Costs::prototype_1985(),
            seed: 1985,
            tracing: false,
            callback_break_batching: false,
        }
    }

    /// The revised-implementation column (Section 5.3).
    pub fn revised(clusters: u32, workstations_per_cluster: u32) -> SystemConfig {
        SystemConfig {
            validation: ValidationMode::Callback,
            traversal: TraversalMode::ClientSide,
            structure: ServerStructure::SingleProcessLwp,
            cache: CachePolicy::SpaceLru(20 << 20),
            ..SystemConfig::prototype(clusters, workstations_per_cluster)
        }
    }

    /// A small default topology used by examples and doctests: the
    /// prototype design at the given scale.
    pub fn small_campus(clusters: u32, workstations_per_cluster: u32) -> SystemConfig {
        SystemConfig::prototype(clusters, workstations_per_cluster)
    }

    /// Total workstation count.
    pub fn total_workstations(&self) -> u32 {
        self.clusters * self.workstations_per_cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_and_revised_differ_in_the_documented_knobs() {
        let p = SystemConfig::prototype(2, 10);
        let r = SystemConfig::revised(2, 10);
        assert_eq!(p.validation, ValidationMode::CheckOnOpen);
        assert_eq!(r.validation, ValidationMode::Callback);
        assert_eq!(p.traversal, TraversalMode::ServerSide);
        assert_eq!(r.traversal, TraversalMode::ClientSide);
        assert_eq!(p.structure, ServerStructure::ProcessPerClient);
        assert_eq!(r.structure, ServerStructure::SingleProcessLwp);
        assert!(matches!(p.cache, CachePolicy::CountLru(_)));
        assert!(matches!(r.cache, CachePolicy::SpaceLru(_)));
        assert_eq!(p.total_workstations(), 20);
    }
}
