//! The surrogate server for low-function workstations.
//!
//! Section 3.3: "An approach we are exploring is to provide a Surrogate
//! Server running on a Virtue workstation. This surrogate would behave as
//! a single-site network file server for the Virtue file system. Clients
//! of this server would then be transparently accessing Vice files on
//! account of a Virtue workstation's transparent Vice attachment. ...
//! Work is currently in progress to build such a surrogate server for IBM
//! PCs."
//!
//! The surrogate is a thin per-PC session multiplexer in front of the host
//! workstation's Venus: every PC request crosses a cheap attachment LAN,
//! pays a small service charge on the host, and is then served exactly as
//! a local application's request would be — so all PCs behind one host
//! share that host's whole-file cache.
//!
//! Trust model, as in the paper: the PCs trust the surrogate host (they
//! have no encryption hardware and no Venus); the surrogate authenticates
//! to Vice as a real user over the standard secure binding. The exposure
//! is confined to the cheap LAN segment.

use itc_sim::SimTime;

/// Identifies a PC attached to a surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcId(pub u32);

/// Per-PC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Requests served.
    pub requests: u64,
    /// Bytes delivered to the PC.
    pub bytes_out: u64,
    /// Bytes received from the PC.
    pub bytes_in: u64,
}

/// The surrogate attachment state for one host workstation.
#[derive(Debug, Default)]
pub struct Surrogate {
    pcs: Vec<(PcId, PcStats, SimTime)>,
    next_pc: u32,
}

impl Surrogate {
    /// Creates an empty surrogate (no PCs attached yet).
    pub fn new() -> Surrogate {
        Surrogate::default()
    }

    /// Attaches a new PC; returns its id.
    pub fn attach_pc(&mut self) -> PcId {
        let id = PcId(self.next_pc);
        self.next_pc += 1;
        self.pcs.push((id, PcStats::default(), SimTime::ZERO));
        id
    }

    /// Number of attached PCs.
    pub fn pc_count(&self) -> usize {
        self.pcs.len()
    }

    /// A PC's statistics.
    pub fn stats_of(&self, pc: PcId) -> Option<PcStats> {
        self.pcs
            .iter()
            .find(|(id, _, _)| *id == pc)
            .map(|(_, s, _)| *s)
    }

    /// A PC's local virtual time.
    pub fn pc_time(&self, pc: PcId) -> Option<SimTime> {
        self.pcs
            .iter()
            .find(|(id, _, _)| *id == pc)
            .map(|(_, _, t)| *t)
    }

    pub(crate) fn record(
        &mut self,
        pc: PcId,
        bytes_in: u64,
        bytes_out: u64,
        completed: SimTime,
    ) -> Result<(), String> {
        let entry = self
            .pcs
            .iter_mut()
            .find(|(id, _, _)| *id == pc)
            .ok_or_else(|| format!("unknown pc {}", pc.0))?;
        entry.1.requests += 1;
        entry.1.bytes_in += bytes_in;
        entry.1.bytes_out += bytes_out;
        if completed > entry.2 {
            entry.2 = completed;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_account() {
        let mut s = Surrogate::new();
        let a = s.attach_pc();
        let b = s.attach_pc();
        assert_ne!(a, b);
        assert_eq!(s.pc_count(), 2);
        s.record(a, 100, 2_000, SimTime::from_secs(1)).unwrap();
        s.record(a, 50, 0, SimTime::from_secs(2)).unwrap();
        let st = s.stats_of(a).unwrap();
        assert_eq!(st.requests, 2);
        assert_eq!(st.bytes_out, 2_000);
        assert_eq!(st.bytes_in, 150);
        assert_eq!(s.pc_time(a), Some(SimTime::from_secs(2)));
        assert_eq!(s.stats_of(b).unwrap().requests, 0);
        assert!(s.record(PcId(99), 0, 0, SimTime::ZERO).is_err());
    }
}
