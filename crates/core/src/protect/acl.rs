//! Access rights and access lists.

use itc_rpc::{WireError, WireReader, WireWriter};

/// A set of access rights, as a bit set.
///
/// The right names follow the semantics Section 3.4 sketches: "The rights
/// associated with a directory control the fetching and storing of files,
/// the creation and deletion of new directory entries, and modifications to
/// the access list."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(pub u8);

impl Rights {
    /// No rights.
    pub const NONE: Rights = Rights(0);
    /// Fetch files and read their status.
    pub const READ: Rights = Rights(1 << 0);
    /// Store (overwrite) existing files.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Create new directory entries (files, subdirectories, symlinks).
    pub const INSERT: Rights = Rights(1 << 2);
    /// Delete directory entries.
    pub const DELETE: Rights = Rights(1 << 3);
    /// Resolve names through the directory without listing it.
    pub const LOOKUP: Rights = Rights(1 << 4);
    /// Acquire advisory locks on files.
    pub const LOCK: Rights = Rights(1 << 5);
    /// Modify the access list itself.
    pub const ADMINISTER: Rights = Rights(1 << 6);

    /// Everything.
    pub const ALL: Rights = Rights(0x7f);
    /// The customary read-only grant: READ | LOOKUP.
    pub const READ_ONLY: Rights = Rights(1 | (1 << 4));

    /// Union.
    pub fn union(self, other: Rights) -> Rights {
        Rights(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn minus(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }

    /// True when every right in `needed` is present.
    pub fn covers(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// True when no rights are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        self.union(rhs)
    }
}

impl std::fmt::Display for Rights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const NAMES: [(Rights, char); 7] = [
            (Rights::READ, 'r'),
            (Rights::WRITE, 'w'),
            (Rights::INSERT, 'i'),
            (Rights::DELETE, 'd'),
            (Rights::LOOKUP, 'l'),
            (Rights::LOCK, 'k'),
            (Rights::ADMINISTER, 'a'),
        ];
        for (bit, ch) in NAMES {
            write!(f, "{}", if self.covers(bit) { ch } else { '-' })?;
        }
        Ok(())
    }
}

/// An access list: positive and negative entries mapping principal names
/// (users or groups) to rights.
///
/// "The union of all the negative rights specified for a user's CPS is
/// subtracted from his positive rights" (Section 3.4). Evaluation is in
/// [`AccessList::effective_rights`]; the CPS itself comes from
/// [`crate::protect::ProtectionDomain::cps`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessList {
    /// Positive entries, sorted by principal name.
    positive: Vec<(String, Rights)>,
    /// Negative entries, sorted by principal name.
    negative: Vec<(String, Rights)>,
}

impl AccessList {
    /// An empty access list (nobody has any rights).
    pub fn new() -> AccessList {
        AccessList::default()
    }

    /// Builds a list from positive entries.
    pub fn with_positive(entries: &[(&str, Rights)]) -> AccessList {
        let mut acl = AccessList::new();
        for (who, r) in entries {
            acl.grant(who, *r);
        }
        acl
    }

    fn upsert(list: &mut Vec<(String, Rights)>, who: &str, rights: Rights) {
        match list.binary_search_by(|e| e.0.as_str().cmp(who)) {
            Ok(i) => {
                if rights.is_empty() {
                    list.remove(i);
                } else {
                    list[i].1 = rights;
                }
            }
            Err(i) => {
                if !rights.is_empty() {
                    list.insert(i, (who.to_string(), rights));
                }
            }
        }
    }

    /// Sets the positive rights for a principal (empty rights remove the
    /// entry).
    pub fn grant(&mut self, who: &str, rights: Rights) {
        Self::upsert(&mut self.positive, who, rights);
    }

    /// Sets the negative rights for a principal — the rapid-revocation
    /// mechanism.
    pub fn deny(&mut self, who: &str, rights: Rights) {
        Self::upsert(&mut self.negative, who, rights);
    }

    /// Removes all entries (positive and negative) for a principal.
    pub fn drop_principal(&mut self, who: &str) {
        Self::upsert(&mut self.positive, who, Rights::NONE);
        Self::upsert(&mut self.negative, who, Rights::NONE);
    }

    /// The positive rights entry for a principal, if any.
    pub fn positive_for(&self, who: &str) -> Option<Rights> {
        self.positive
            .binary_search_by(|e| e.0.as_str().cmp(who))
            .ok()
            .map(|i| self.positive[i].1)
    }

    /// The negative rights entry for a principal, if any.
    pub fn negative_for(&self, who: &str) -> Option<Rights> {
        self.negative
            .binary_search_by(|e| e.0.as_str().cmp(who))
            .ok()
            .map(|i| self.negative[i].1)
    }

    /// Number of entries (positive + negative).
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// True when there are no entries at all.
    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }

    /// Iterates positive entries.
    pub fn positive_entries(&self) -> impl Iterator<Item = (&str, Rights)> {
        self.positive.iter().map(|(w, r)| (w.as_str(), *r))
    }

    /// Iterates negative entries.
    pub fn negative_entries(&self) -> impl Iterator<Item = (&str, Rights)> {
        self.negative.iter().map(|(w, r)| (w.as_str(), *r))
    }

    /// Evaluates the effective rights of a user whose CPS (the user's own
    /// name plus every group transitively containing him) is `cps`:
    /// union of matching positive entries minus union of matching negative
    /// entries.
    pub fn effective_rights<'a, I>(&self, cps: I) -> Rights
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut plus = Rights::NONE;
        let mut minus = Rights::NONE;
        for name in cps {
            if let Some(r) = self.positive_for(name) {
                plus = plus.union(r);
            }
            if let Some(r) = self.negative_for(name) {
                minus = minus.union(r);
            }
        }
        plus.minus(minus)
    }

    /// Serializes to the wire format.
    pub fn encode(&self, w: WireWriter) -> WireWriter {
        let mut w = w.u32(self.positive.len() as u32);
        for (who, r) in &self.positive {
            w = w.string(who).u8(r.0);
        }
        w = w.u32(self.negative.len() as u32);
        for (who, r) in &self.negative {
            w = w.string(who).u8(r.0);
        }
        w
    }

    /// Deserializes from the wire format.
    pub fn decode(r: &mut WireReader<'_>) -> Result<AccessList, WireError> {
        let mut acl = AccessList::new();
        let np = r.u32()?;
        for _ in 0..np {
            let who = r.string()?;
            let rights = Rights(r.u8()?);
            acl.grant(&who, rights);
        }
        let nn = r.u32()?;
        for _ in 0..nn {
            let who = r.string()?;
            let rights = Rights(r.u8()?);
            acl.deny(&who, rights);
        }
        Ok(acl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_set_algebra() {
        let rw = Rights::READ | Rights::WRITE;
        assert!(rw.covers(Rights::READ));
        assert!(!rw.covers(Rights::ADMINISTER));
        assert!(rw.covers(Rights::NONE));
        assert_eq!(rw.minus(Rights::WRITE), Rights::READ);
        assert!(Rights::ALL.covers(rw));
        assert_eq!(format!("{}", rw), "rw-----");
        assert_eq!(format!("{}", Rights::ALL), "rwidlka");
    }

    #[test]
    fn grant_and_effective() {
        let mut acl = AccessList::new();
        acl.grant("satya", Rights::ALL);
        acl.grant("faculty", Rights::READ_ONLY);
        assert_eq!(acl.effective_rights(["satya"]), Rights::ALL);
        assert_eq!(
            acl.effective_rights(["howard", "faculty"]),
            Rights::READ_ONLY
        );
        assert_eq!(acl.effective_rights(["stranger"]), Rights::NONE);
    }

    #[test]
    fn rights_union_across_cps() {
        // "The rights possessed by a user on a protected object are the
        // union of the rights specified for all the groups that he belongs
        // to."
        let mut acl = AccessList::new();
        acl.grant("readers", Rights::READ_ONLY);
        acl.grant("writers", Rights::WRITE | Rights::INSERT);
        let eff = acl.effective_rights(["nichols", "readers", "writers"]);
        assert!(eff.covers(Rights::READ | Rights::WRITE | Rights::INSERT | Rights::LOOKUP));
    }

    #[test]
    fn negative_rights_subtract() {
        let mut acl = AccessList::new();
        acl.grant("faculty", Rights::ALL);
        acl.deny(
            "mallory",
            Rights::WRITE | Rights::INSERT | Rights::DELETE | Rights::ADMINISTER,
        );
        // Mallory is faculty, but his negative entry wins on those bits.
        let eff = acl.effective_rights(["mallory", "faculty"]);
        assert_eq!(eff, Rights::READ | Rights::LOOKUP | Rights::LOCK);
        // Other faculty are unaffected.
        assert_eq!(acl.effective_rights(["west", "faculty"]), Rights::ALL);
    }

    #[test]
    fn negative_beats_positive_even_via_groups() {
        let mut acl = AccessList::new();
        acl.grant("staff", Rights::ALL);
        acl.deny("suspended", Rights::ALL);
        // The user is in both groups; denial wins entirely.
        assert_eq!(
            acl.effective_rights(["u", "staff", "suspended"]),
            Rights::NONE
        );
    }

    #[test]
    fn upsert_replaces_and_empty_removes() {
        let mut acl = AccessList::new();
        acl.grant("u", Rights::READ);
        acl.grant("u", Rights::WRITE);
        assert_eq!(acl.positive_for("u"), Some(Rights::WRITE));
        acl.grant("u", Rights::NONE);
        assert_eq!(acl.positive_for("u"), None);
        assert!(acl.is_empty());
    }

    #[test]
    fn drop_principal_clears_both_sides() {
        let mut acl = AccessList::new();
        acl.grant("u", Rights::READ);
        acl.deny("u", Rights::WRITE);
        acl.drop_principal("u");
        assert!(acl.is_empty());
    }

    #[test]
    fn wire_round_trip() {
        let mut acl = AccessList::new();
        acl.grant("satya", Rights::ALL);
        acl.grant("faculty", Rights::READ_ONLY);
        acl.deny("mallory", Rights::WRITE);
        let bytes = acl.encode(WireWriter::new()).finish();
        let mut r = WireReader::new(&bytes);
        let decoded = AccessList::decode(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(decoded, acl);
    }
}
