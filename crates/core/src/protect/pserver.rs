//! The protection server.
//!
//! "Information about users and groups is stored in a protection database
//! which is replicated at each cluster server. Manipulation of this
//! database is via a protection server, which coordinates the updating of
//! the database at all sites" (Section 3.4). The prototype had none and
//! relied on manual updates; the reimplementation added one — we build the
//! reimplementation's version.
//!
//! In the reproduction the replicas share content through an `Arc` (they
//! are bit-identical at all times), but every mutation reports how many replica
//! sites must be updated so the system layer can charge one RPC per cluster
//! server — that propagation cost is exactly what experiment E12 contrasts
//! with single-site negative-rights revocation.

use super::domain::{DomainError, ProtectionDomain};
use itc_cryptbox::Key;
use std::sync::{Arc, RwLock};

/// Outcome of a mutation: what must be pushed to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationJob {
    /// The database version after the mutation.
    pub version: u64,
    /// Number of replica sites (cluster servers) that must receive it.
    pub replica_sites: u32,
}

/// Coordinates updates to the replicated protection database.
#[derive(Debug, Clone)]
pub struct ProtectionServer {
    domain: Arc<RwLock<ProtectionDomain>>,
    replica_sites: u32,
}

impl ProtectionServer {
    /// Creates the server over a shared domain replicated at
    /// `replica_sites` cluster servers.
    pub fn new(domain: Arc<RwLock<ProtectionDomain>>, replica_sites: u32) -> ProtectionServer {
        ProtectionServer {
            domain,
            replica_sites,
        }
    }

    /// Shared handle to the (replicated) domain content.
    pub fn domain(&self) -> Arc<RwLock<ProtectionDomain>> {
        Arc::clone(&self.domain)
    }

    fn job(&self) -> ReplicationJob {
        ReplicationJob {
            version: self
                .domain
                .read()
                .expect("protection domain lock")
                .version(),
            replica_sites: self.replica_sites,
        }
    }

    /// Registers a user.
    pub fn add_user(&self, name: &str, password: &str) -> Result<ReplicationJob, DomainError> {
        self.domain
            .write()
            .expect("protection domain lock")
            .add_user(name, password)?;
        Ok(self.job())
    }

    /// Creates a group.
    pub fn add_group(&self, name: &str) -> Result<ReplicationJob, DomainError> {
        self.domain
            .write()
            .expect("protection domain lock")
            .add_group(name)?;
        Ok(self.job())
    }

    /// Adds a member to a group.
    pub fn add_member(&self, group: &str, member: &str) -> Result<ReplicationJob, DomainError> {
        self.domain
            .write()
            .expect("protection domain lock")
            .add_member(group, member)?;
        Ok(self.job())
    }

    /// Removes a member from a group.
    pub fn remove_member(&self, group: &str, member: &str) -> Result<ReplicationJob, DomainError> {
        self.domain
            .write()
            .expect("protection domain lock")
            .remove_member(group, member)?;
        Ok(self.job())
    }

    /// The slow revocation path: strips a user from every group. Returns
    /// the job plus how many direct memberships were removed.
    pub fn revoke_all_memberships(&self, user: &str) -> (ReplicationJob, usize) {
        let removed = self
            .domain
            .write()
            .expect("protection domain lock")
            .remove_from_all_groups(user);
        (self.job(), removed)
    }

    /// Authentication lookup: the key Vice uses for the handshake.
    pub fn auth_key(&self, user: &str) -> Result<Key, DomainError> {
        self.domain
            .read()
            .expect("protection domain lock")
            .auth_key(user)
    }

    /// The CPS of a user (evaluated against current replica content).
    pub fn cps(&self, user: &str) -> Vec<String> {
        self.domain
            .read()
            .expect("protection domain lock")
            .cps(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pserver(sites: u32) -> ProtectionServer {
        ProtectionServer::new(Arc::new(RwLock::new(ProtectionDomain::new())), sites)
    }

    #[test]
    fn mutations_report_replication_fanout() {
        let ps = pserver(6);
        let job = ps.add_user("satya", "pw").unwrap();
        assert_eq!(job.replica_sites, 6);
        assert_eq!(job.version, 1);
        let job2 = ps.add_group("itc").unwrap();
        assert!(job2.version > job.version);
    }

    #[test]
    fn revocation_via_groups_touches_everything() {
        let ps = pserver(6);
        ps.add_user("mallory", "pw").unwrap();
        for g in ["a", "b", "c"] {
            ps.add_group(g).unwrap();
            ps.add_member(g, "mallory").unwrap();
        }
        assert_eq!(ps.cps("mallory").len(), 4);
        let (job, removed) = ps.revoke_all_memberships("mallory");
        assert_eq!(removed, 3);
        assert_eq!(job.replica_sites, 6);
        assert_eq!(ps.cps("mallory"), vec!["mallory".to_string()]);
    }

    #[test]
    fn shared_domain_is_visible_to_replicas() {
        let ps = pserver(2);
        ps.add_user("u", "p").unwrap();
        // A "replica" holding the same Arc sees the update immediately
        // (content sync is free; only time is charged by the system layer).
        let replica = ps.domain();
        assert!(replica.read().expect("protection domain lock").is_user("u"));
    }
}
