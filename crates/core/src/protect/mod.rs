//! Protection: users, groups, access lists, and the protection server.
//!
//! Section 3.4 of the paper defines a protection domain of *Users* and
//! *Groups*, where groups may recursively contain other groups (modeled on
//! Grapevine's registration database). The rights a user has on an object
//! are the union of the rights of every group reachable from him — his
//! *Current Protection Subdomain* (CPS) — minus the union of the *negative
//! rights* of that CPS. Negative rights exist because removing a user from
//! all groups is slow in a distributed system: "To revoke a user's access
//! to an object, he can be given negative rights on that object" at a
//! single site, immediately.
//!
//! The protected entities in the prototype are directories; the revised
//! design adds per-file Unix mode bits on top (Section 5.1), which this
//! reproduction also supports (the mode bits live in the underlying
//! [`itc_unixfs`] inodes).

pub mod acl;
pub mod domain;
pub mod pserver;

pub use acl::{AccessList, Rights};
pub use domain::{Principal, ProtectionDomain};
pub use pserver::ProtectionServer;
