//! The protection domain: users, recursively-nested groups, and CPS
//! computation.
//!
//! "Entries on an access list are from a protection domain consisting of
//! Users, who are typically human beings, and Groups, which are collections
//! of users and other groups. The recursive membership of groups is similar
//! to that of the registration database in Grapevine" (Section 3.4).
//!
//! The domain also stores each user's authentication key (derived from his
//! password), because Vice must hold the same key Venus derives in order to
//! run the mutual handshake. "Information about users and groups is stored
//! in a protection database which is replicated at each cluster server" —
//! replication is modeled in [`crate::protect::pserver`].

use itc_cryptbox::{derive_key, Key};
use std::collections::{BTreeMap, BTreeSet};

/// A principal: either a user or a group. Names are unique across both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Principal {
    /// A human (or role) that can authenticate.
    User {
        /// Authentication key derived from the password.
        auth_key: Key,
    },
    /// A named collection of users and groups.
    Group {
        /// Direct members (user or group names).
        members: BTreeSet<String>,
    },
}

/// Errors from domain manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The principal name is already taken.
    Duplicate(String),
    /// No principal with that name.
    Unknown(String),
    /// The named principal is not a group.
    NotAGroup(String),
    /// The named principal is not a user.
    NotAUser(String),
    /// Adding this membership would create a cycle.
    Cycle(String),
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Duplicate(n) => write!(f, "principal already exists: {n}"),
            DomainError::Unknown(n) => write!(f, "unknown principal: {n}"),
            DomainError::NotAGroup(n) => write!(f, "not a group: {n}"),
            DomainError::NotAUser(n) => write!(f, "not a user: {n}"),
            DomainError::Cycle(n) => write!(f, "membership cycle through: {n}"),
        }
    }
}

impl std::error::Error for DomainError {}

/// The user/group database.
#[derive(Debug, Clone, Default)]
pub struct ProtectionDomain {
    principals: BTreeMap<String, Principal>,
    /// Version, bumped on every mutation — replicas compare this.
    version: u64,
}

impl ProtectionDomain {
    /// An empty domain.
    pub fn new() -> ProtectionDomain {
        ProtectionDomain::default()
    }

    /// Current version (bumped by every mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers a user with a password. The stored key is derived exactly
    /// as Venus derives it, salted by the user name.
    pub fn add_user(&mut self, name: &str, password: &str) -> Result<(), DomainError> {
        if self.principals.contains_key(name) {
            return Err(DomainError::Duplicate(name.to_string()));
        }
        self.principals.insert(
            name.to_string(),
            Principal::User {
                auth_key: derive_key(password, name),
            },
        );
        self.version += 1;
        Ok(())
    }

    /// Creates an empty group.
    pub fn add_group(&mut self, name: &str) -> Result<(), DomainError> {
        if self.principals.contains_key(name) {
            return Err(DomainError::Duplicate(name.to_string()));
        }
        self.principals.insert(
            name.to_string(),
            Principal::Group {
                members: BTreeSet::new(),
            },
        );
        self.version += 1;
        Ok(())
    }

    /// Adds `member` (user or group) to `group`. Rejects cycles.
    pub fn add_member(&mut self, group: &str, member: &str) -> Result<(), DomainError> {
        if !self.principals.contains_key(member) {
            return Err(DomainError::Unknown(member.to_string()));
        }
        // A cycle exists if `member` (transitively) contains `group` —
        // i.e. `member` is among the groups reachable upward from `group`.
        if group == member || self.reachable_groups_from(group).contains(member) {
            return Err(DomainError::Cycle(member.to_string()));
        }
        match self.principals.get_mut(group) {
            Some(Principal::Group { members }) => {
                members.insert(member.to_string());
                self.version += 1;
                Ok(())
            }
            Some(_) => Err(DomainError::NotAGroup(group.to_string())),
            None => Err(DomainError::Unknown(group.to_string())),
        }
    }

    /// Removes `member` from `group`.
    pub fn remove_member(&mut self, group: &str, member: &str) -> Result<(), DomainError> {
        match self.principals.get_mut(group) {
            Some(Principal::Group { members }) => {
                members.remove(member);
                self.version += 1;
                Ok(())
            }
            Some(_) => Err(DomainError::NotAGroup(group.to_string())),
            None => Err(DomainError::Unknown(group.to_string())),
        }
    }

    /// Removes `member` from **every** group that directly contains it —
    /// the paper's "slow revocation" path, which the protection server must
    /// propagate to every replica.
    pub fn remove_from_all_groups(&mut self, member: &str) -> usize {
        let mut removed = 0;
        for p in self.principals.values_mut() {
            if let Principal::Group { members } = p {
                if members.remove(member) {
                    removed += 1;
                }
            }
        }
        if removed > 0 {
            self.version += 1;
        }
        removed
    }

    /// The authentication key for a user, if he exists.
    pub fn auth_key(&self, user: &str) -> Result<Key, DomainError> {
        match self.principals.get(user) {
            Some(Principal::User { auth_key }) => Ok(*auth_key),
            Some(_) => Err(DomainError::NotAUser(user.to_string())),
            None => Err(DomainError::Unknown(user.to_string())),
        }
    }

    /// True when `name` names a user.
    pub fn is_user(&self, name: &str) -> bool {
        matches!(self.principals.get(name), Some(Principal::User { .. }))
    }

    /// True when `name` names any principal.
    pub fn exists(&self, name: &str) -> bool {
        self.principals.contains_key(name)
    }

    /// Direct members of a group.
    pub fn members_of(&self, group: &str) -> Result<Vec<String>, DomainError> {
        match self.principals.get(group) {
            Some(Principal::Group { members }) => Ok(members.iter().cloned().collect()),
            Some(_) => Err(DomainError::NotAGroup(group.to_string())),
            None => Err(DomainError::Unknown(group.to_string())),
        }
    }

    /// All groups reachable from a principal by following "is a member of"
    /// edges — i.e. every group that directly or transitively contains it.
    fn reachable_groups_from(&self, start: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut frontier = vec![start.to_string()];
        while let Some(cur) = frontier.pop() {
            for (gname, p) in &self.principals {
                if let Principal::Group { members } = p {
                    if members.contains(&cur) && out.insert(gname.clone()) {
                        frontier.push(gname.clone());
                    }
                }
            }
        }
        out
    }

    /// The Current Protection Subdomain of a user: his own name plus every
    /// group that contains him "either directly or indirectly"
    /// (Section 3.4). ACL evaluation unions rights over exactly this set.
    pub fn cps(&self, user: &str) -> Vec<String> {
        let mut names = vec![user.to_string()];
        names.extend(self.reachable_groups_from(user));
        names
    }

    /// Number of principals.
    pub fn len(&self) -> usize {
        self.principals.len()
    }

    /// True when no principals are registered.
    pub fn is_empty(&self) -> bool {
        self.principals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campus() -> ProtectionDomain {
        let mut d = ProtectionDomain::new();
        for u in ["satya", "howard", "nichols", "student1"] {
            d.add_user(u, &format!("pw-{u}")).unwrap();
        }
        d.add_group("itc").unwrap();
        d.add_group("faculty").unwrap();
        d.add_group("cmu").unwrap();
        d.add_member("itc", "satya").unwrap();
        d.add_member("itc", "howard").unwrap();
        d.add_member("faculty", "itc").unwrap(); // group inside group
        d.add_member("cmu", "faculty").unwrap();
        d.add_member("cmu", "student1").unwrap();
        d
    }

    #[test]
    fn cps_is_transitive() {
        let d = campus();
        let cps = d.cps("satya");
        for g in ["satya", "itc", "faculty", "cmu"] {
            assert!(cps.contains(&g.to_string()), "missing {g} in {cps:?}");
        }
        assert!(!cps.contains(&"howard".to_string()));
        let s = d.cps("student1");
        assert!(s.contains(&"cmu".to_string()));
        assert!(!s.contains(&"faculty".to_string()));
    }

    #[test]
    fn unknown_user_cps_is_just_self() {
        let d = campus();
        assert_eq!(d.cps("ghost"), vec!["ghost".to_string()]);
    }

    #[test]
    fn cycles_rejected() {
        let mut d = campus();
        // faculty contains itc; adding faculty to itc would cycle.
        assert!(matches!(
            d.add_member("itc", "faculty"),
            Err(DomainError::Cycle(_))
        ));
        assert!(matches!(
            d.add_member("itc", "itc"),
            Err(DomainError::Cycle(_))
        ));
    }

    #[test]
    fn auth_keys_match_password_derivation() {
        let d = campus();
        let k = d.auth_key("satya").unwrap();
        assert_eq!(k, itc_cryptbox::derive_key("pw-satya", "satya"));
        assert!(matches!(d.auth_key("itc"), Err(DomainError::NotAUser(_))));
        assert!(matches!(d.auth_key("nobody"), Err(DomainError::Unknown(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut d = campus();
        assert!(matches!(
            d.add_user("satya", "x"),
            Err(DomainError::Duplicate(_))
        ));
        assert!(matches!(
            d.add_group("faculty"),
            Err(DomainError::Duplicate(_))
        ));
    }

    #[test]
    fn membership_removal_shrinks_cps() {
        let mut d = campus();
        assert!(d.cps("satya").contains(&"faculty".to_string()));
        d.remove_member("itc", "satya").unwrap();
        let cps = d.cps("satya");
        assert!(!cps.contains(&"itc".to_string()));
        assert!(!cps.contains(&"faculty".to_string()));
    }

    #[test]
    fn remove_from_all_groups_counts() {
        let mut d = campus();
        d.add_member("cmu", "satya").unwrap();
        // satya is directly in itc and cmu.
        assert_eq!(d.remove_from_all_groups("satya"), 2);
        assert_eq!(d.cps("satya"), vec!["satya".to_string()]);
        assert_eq!(d.remove_from_all_groups("satya"), 0);
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut d = ProtectionDomain::new();
        let v0 = d.version();
        d.add_user("u", "p").unwrap();
        assert!(d.version() > v0);
        let v1 = d.version();
        d.add_group("g").unwrap();
        d.add_member("g", "u").unwrap();
        assert!(d.version() > v1);
    }

    #[test]
    fn members_listing() {
        let d = campus();
        let m = d.members_of("itc").unwrap();
        assert_eq!(m, vec!["howard".to_string(), "satya".to_string()]);
        assert!(d.members_of("satya").is_err());
    }
}
