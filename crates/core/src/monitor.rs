//! Traffic monitoring and rebalancing recommendations.
//!
//! Section 3.6: "Another area, whose importance we recognize ... is the
//! development of monitoring tools. These tools will be required to ease
//! day-to-day operations of the system and also to recognize long-term
//! changes in user access patterns and help reassign users to cluster
//! servers so as to balance server loads and reduce cross-cluster
//! traffic." And Section 3.1: "we may install mechanisms in Vice to
//! monitor long-term access file patterns and recommend changes to improve
//! performance. Even then, a human operator will initiate the actual
//! reassignment."
//!
//! [`TrafficMonitor`] records which cluster each Vice call originated from,
//! per custodianship subtree; [`TrafficMonitor::recommendations`] proposes
//! moving any subtree whose traffic majority comes from a different
//! cluster than its custodian. The operator (the experiment driver)
//! applies them with [`crate::system::ItcSystem::move_volume`].

use crate::proto::ServerId;
use std::collections::HashMap;
use std::sync::Arc;

/// A recommended volume reassignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRecommendation {
    /// The subtree (volume mount) to move.
    pub subtree: String,
    /// Its current custodian.
    pub from: ServerId,
    /// The server whose cluster generates most of its traffic.
    pub to: ServerId,
    /// Calls observed from the winning cluster.
    pub winning_calls: u64,
    /// Total calls observed for the subtree.
    pub total_calls: u64,
}

/// Per-subtree, per-origin-cluster call counts. Subtree keys are interned
/// `Arc<str>`s shared with the location database, so the per-call record
/// on the transport hot path is a refcount bump, not a `String` clone.
#[derive(Debug, Default)]
pub struct TrafficMonitor {
    counts: HashMap<(Arc<str>, u32), u64>,
}

impl TrafficMonitor {
    /// Creates an empty monitor.
    pub fn new() -> TrafficMonitor {
        TrafficMonitor::default()
    }

    /// Records one call against `subtree` from a workstation in
    /// `origin_cluster`. Allocates a key for a subtree not seen before;
    /// the transport uses [`TrafficMonitor::record_interned`] instead.
    pub fn record(&mut self, subtree: &str, origin_cluster: u32) {
        *self
            .counts
            .entry((Arc::from(subtree), origin_cluster))
            .or_insert(0) += 1;
    }

    /// Records one call using an already-interned subtree key (shared with
    /// the location database): no allocation on the hot path.
    pub fn record_interned(&mut self, subtree: &Arc<str>, origin_cluster: u32) {
        *self
            .counts
            .entry((Arc::clone(subtree), origin_cluster))
            .or_insert(0) += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Calls recorded for a subtree from a given cluster.
    pub fn calls_from(&self, subtree: &str, cluster: u32) -> u64 {
        self.counts
            .get(&(Arc::from(subtree), cluster))
            .copied()
            .unwrap_or(0)
    }

    /// Fraction of all observed calls that crossed clusters, given the
    /// custodian of each subtree (cluster id == server id in the standard
    /// topology).
    pub fn cross_cluster_fraction(&self, custodian_of: impl Fn(&str) -> Option<ServerId>) -> f64 {
        let mut cross = 0u64;
        let mut total = 0u64;
        for ((subtree, origin), &n) in &self.counts {
            total += n;
            if let Some(c) = custodian_of(subtree.as_ref()) {
                if c.0 != *origin {
                    cross += n;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            cross as f64 / total as f64
        }
    }

    /// Proposes moving every subtree whose traffic majority originates in
    /// a different cluster than its custodian. `custodian_of` supplies the
    /// current assignment; subtrees it does not know are skipped (e.g.
    /// the root volume, which must stay put).
    pub fn recommendations(
        &self,
        custodian_of: impl Fn(&str) -> Option<ServerId>,
        movable: impl Fn(&str) -> bool,
    ) -> Vec<MoveRecommendation> {
        // Group by subtree. A BTreeMap keeps the traversal (and therefore
        // every tie-break below) independent of HashMap iteration order —
        // the recommendation list must be deterministic run to run.
        let mut per_subtree: std::collections::BTreeMap<&str, Vec<(u32, u64)>> =
            std::collections::BTreeMap::new();
        for ((subtree, origin), &n) in &self.counts {
            per_subtree
                .entry(subtree.as_ref())
                .or_default()
                .push((*origin, n));
        }
        let mut recs = Vec::new();
        for (subtree, origins) in per_subtree {
            if !movable(subtree) {
                continue;
            }
            let Some(current) = custodian_of(subtree) else {
                continue;
            };
            let total: u64 = origins.iter().map(|(_, n)| n).sum();
            // Highest call count wins; equal counts go to the lowest
            // cluster id, so the winner never depends on map order.
            let Some(&(winner, winning_calls)) = origins
                .iter()
                .max_by_key(|(origin, n)| (*n, std::cmp::Reverse(*origin)))
            else {
                continue;
            };
            // Only recommend when the winning cluster truly dominates
            // (>50% of traffic) and differs from the current custodian —
            // reassignments are expensive and human-initiated.
            if winner != current.0 && winning_calls * 2 > total {
                recs.push(MoveRecommendation {
                    subtree: subtree.to_string(),
                    from: current,
                    to: ServerId(winner),
                    winning_calls,
                    total_calls: total,
                });
            }
        }
        // Busiest first; equal traffic orders by mount so the list is
        // stable across runs.
        recs.sort_by(|a, b| {
            b.winning_calls
                .cmp(&a.winning_calls)
                .then_with(|| a.subtree.cmp(&b.subtree))
        });
        recs
    }

    /// Clears all observations (start of a new measurement epoch).
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn custodians(subtree: &str) -> Option<ServerId> {
        match subtree {
            "/vice/usr/alice" => Some(ServerId(0)),
            "/vice/usr/bob" => Some(ServerId(0)),
            "/vice" => Some(ServerId(0)),
            _ => None,
        }
    }

    #[test]
    fn recommends_moving_misplaced_subtrees() {
        let mut m = TrafficMonitor::new();
        // Alice works from cluster 1; her volume sits on server 0.
        for _ in 0..90 {
            m.record("/vice/usr/alice", 1);
        }
        for _ in 0..10 {
            m.record("/vice/usr/alice", 0);
        }
        // Bob is where he should be.
        for _ in 0..50 {
            m.record("/vice/usr/bob", 0);
        }
        let recs = m.recommendations(custodians, |s| s != "/vice");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].subtree, "/vice/usr/alice");
        assert_eq!(recs[0].to, ServerId(1));
        assert_eq!(recs[0].winning_calls, 90);
        assert_eq!(recs[0].total_calls, 100);
    }

    #[test]
    fn bare_majority_is_not_enough() {
        let mut m = TrafficMonitor::new();
        // 50/50 split: no recommendation (the move would not pay for
        // itself).
        for _ in 0..50 {
            m.record("/vice/usr/alice", 1);
        }
        for _ in 0..50 {
            m.record("/vice/usr/alice", 0);
        }
        assert!(m.recommendations(custodians, |_| true).is_empty());
    }

    #[test]
    fn immovable_subtrees_are_skipped() {
        let mut m = TrafficMonitor::new();
        for _ in 0..100 {
            m.record("/vice", 1);
        }
        assert!(m.recommendations(custodians, |s| s != "/vice").is_empty());
    }

    #[test]
    fn empty_monitor_recommends_nothing() {
        let m = TrafficMonitor::new();
        assert_eq!(m.total(), 0);
        assert!(m.recommendations(custodians, |_| true).is_empty());
        assert_eq!(m.cross_cluster_fraction(custodians), 0.0);
    }

    #[test]
    fn single_cluster_traffic_never_recommends_a_move() {
        // Everything originates where it lives: nothing to do, however
        // lopsided the volumes' popularity.
        let mut m = TrafficMonitor::new();
        for _ in 0..500 {
            m.record("/vice/usr/alice", 0);
        }
        for _ in 0..3 {
            m.record("/vice/usr/bob", 0);
        }
        assert!(m.recommendations(custodians, |_| true).is_empty());
        assert_eq!(m.cross_cluster_fraction(custodians), 0.0);
    }

    #[test]
    fn equal_traffic_orders_recommendations_by_mount() {
        // Alice and Bob both live on server 0 but work from cluster 1
        // with identical call counts: the tie must break the same way on
        // every run (lexicographic mount order), not by map iteration.
        let mut m = TrafficMonitor::new();
        for _ in 0..40 {
            m.record("/vice/usr/alice", 1);
            m.record("/vice/usr/bob", 1);
        }
        for _ in 0..100 {
            let recs = m.recommendations(custodians, |_| true);
            assert_eq!(recs.len(), 2);
            assert_eq!(recs[0].subtree, "/vice/usr/alice");
            assert_eq!(recs[1].subtree, "/vice/usr/bob");
            assert_eq!((recs[0].winning_calls, recs[1].winning_calls), (40, 40));
        }
    }

    #[test]
    fn winning_cluster_tie_breaks_to_the_lowest_id() {
        // Three origin clusters, two tied for the lead. No move clears
        // the >50% dominance bar, so nothing is recommended — but the
        // winner computation itself must still be deterministic.
        let mut m = TrafficMonitor::new();
        for _ in 0..40 {
            m.record("/vice/usr/alice", 2);
            m.record("/vice/usr/alice", 1);
        }
        for _ in 0..20 {
            m.record("/vice/usr/alice", 0);
        }
        assert!(m.recommendations(custodians, |_| true).is_empty());
        // A decisive winner with the same shape is reported against the
        // full total.
        for _ in 0..61 {
            m.record("/vice/usr/alice", 1);
        }
        let recs = m.recommendations(custodians, |_| true);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].to, ServerId(1));
        assert_eq!(recs[0].winning_calls, 101);
        assert_eq!(recs[0].total_calls, 161);
    }

    #[test]
    fn cross_cluster_fraction_counts_correctly() {
        let mut m = TrafficMonitor::new();
        for _ in 0..30 {
            m.record("/vice/usr/alice", 1); // cross (custodian 0)
        }
        for _ in 0..70 {
            m.record("/vice/usr/bob", 0); // local
        }
        let f = m.cross_cluster_fraction(custodians);
        assert!((f - 0.3).abs() < 1e-9);
        m.reset();
        assert_eq!(m.total(), 0);
        assert_eq!(m.cross_cluster_fraction(custodians), 0.0);
    }
}
