//! Advisory single-writer/multi-reader locking.
//!
//! Section 3.6: "Vice provides primitives for single-writer/multi-reader
//! locking. Such locking is advisory in nature, and it is the responsibility
//! of each application program to ensure that all competing accessors for a
//! file will also perform locking."
//!
//! In the prototype this table lived in a dedicated lock-server Unix
//! process (because per-client processes could not share memory); that cost
//! is modeled by the `lock_ipc` flag in [`crate::server::CallCost`]. The
//! table itself is the same either way.

use itc_rpc::NodeId;
use std::collections::HashMap;

/// Lock flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Multi-reader.
    Shared,
    /// Single-writer.
    Exclusive,
}

/// One lock holder: the authenticated user at a particular workstation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Holder {
    user: String,
    workstation: NodeId,
}

#[derive(Debug, Default)]
struct Entry {
    readers: Vec<Holder>,
    writer: Option<Holder>,
}

/// The lock table of one server.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: HashMap<String, Entry>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Attempts to acquire a lock on `path`. Returns whether it was
    /// granted. Re-acquiring a lock already held (same user, workstation
    /// and compatible kind) succeeds idempotently; upgrading from shared to
    /// exclusive succeeds only when the caller is the sole reader.
    pub fn acquire(&mut self, path: &str, user: &str, ws: NodeId, kind: LockKind) -> bool {
        let h = Holder {
            user: user.to_string(),
            workstation: ws,
        };
        let e = self.entries.entry(path.to_string()).or_default();
        match kind {
            LockKind::Shared => {
                match &e.writer {
                    Some(w) if *w != h => false,
                    Some(_) => true, // the writer may also read
                    None => {
                        if !e.readers.contains(&h) {
                            e.readers.push(h);
                        }
                        true
                    }
                }
            }
            LockKind::Exclusive => {
                if let Some(w) = &e.writer {
                    return *w == h;
                }
                let other_readers = e.readers.iter().any(|r| *r != h);
                if other_readers {
                    return false;
                }
                e.readers.retain(|r| *r != h);
                e.writer = Some(h);
                true
            }
        }
    }

    /// Releases whatever lock `user@ws` holds on `path`. Releasing a lock
    /// that is not held is a no-op (advisory semantics).
    pub fn release(&mut self, path: &str, user: &str, ws: NodeId) {
        let h = Holder {
            user: user.to_string(),
            workstation: ws,
        };
        if let Some(e) = self.entries.get_mut(path) {
            e.readers.retain(|r| *r != h);
            if e.writer.as_ref() == Some(&h) {
                e.writer = None;
            }
            if e.readers.is_empty() && e.writer.is_none() {
                self.entries.remove(path);
            }
        }
    }

    /// Number of paths with outstanding locks.
    pub fn locked_paths(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WS1: NodeId = NodeId(1);
    const WS2: NodeId = NodeId(2);

    #[test]
    fn multiple_readers_allowed() {
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Shared));
        assert!(t.acquire("/v/f", "b", WS2, LockKind::Shared));
        assert_eq!(t.locked_paths(), 1);
    }

    #[test]
    fn writer_excludes_everyone() {
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Exclusive));
        assert!(!t.acquire("/v/f", "b", WS2, LockKind::Exclusive));
        assert!(!t.acquire("/v/f", "b", WS2, LockKind::Shared));
        // Writer itself may re-acquire.
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Exclusive));
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Shared));
    }

    #[test]
    fn readers_block_writer() {
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Shared));
        assert!(!t.acquire("/v/f", "b", WS2, LockKind::Exclusive));
        t.release("/v/f", "a", WS1);
        assert!(t.acquire("/v/f", "b", WS2, LockKind::Exclusive));
    }

    #[test]
    fn sole_reader_may_upgrade() {
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Shared));
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Exclusive));
        // Now exclusive: other readers blocked.
        assert!(!t.acquire("/v/f", "b", WS2, LockKind::Shared));
    }

    #[test]
    fn upgrade_blocked_by_other_readers() {
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Shared));
        assert!(t.acquire("/v/f", "b", WS2, LockKind::Shared));
        assert!(!t.acquire("/v/f", "a", WS1, LockKind::Exclusive));
    }

    #[test]
    fn release_is_scoped_to_holder() {
        let mut t = LockTable::new();
        t.acquire("/v/f", "a", WS1, LockKind::Shared);
        t.acquire("/v/f", "b", WS2, LockKind::Shared);
        // Releasing from the wrong workstation does nothing.
        t.release("/v/f", "a", WS2);
        assert!(!t.acquire("/v/f", "c", WS2, LockKind::Exclusive));
        t.release("/v/f", "a", WS1);
        t.release("/v/f", "b", WS2);
        assert_eq!(t.locked_paths(), 0);
        // Releasing an unheld lock is a no-op.
        t.release("/v/g", "a", WS1);
    }

    #[test]
    fn same_user_different_workstations_are_distinct_holders() {
        // Mobility: the same human at two workstations is two lock holders
        // — otherwise a crashed workstation's lock would silently transfer.
        let mut t = LockTable::new();
        assert!(t.acquire("/v/f", "a", WS1, LockKind::Exclusive));
        assert!(!t.acquire("/v/f", "a", WS2, LockKind::Exclusive));
    }
}
