//! The Vice cluster server.
//!
//! "No user programs are executed on any Vice machine" (Section 2.3): a
//! server does exactly what [`Server::handle`] implements — it stores the
//! volumes it is custodian of, answers location queries, validates cached
//! copies (or maintains callback promises in the revised design), enforces
//! protection on every call using the identity the RPC handshake
//! authenticated, and serves whole-file fetch and store.
//!
//! The server never trusts anything a workstation claims: the `user`
//! argument to [`Server::handle`] comes from the binding, not the request,
//! and every request is re-checked against the access lists here even if
//! Venus already checked client-side.

mod locks;

pub use locks::{LockKind, LockTable};

use crate::disk::{
    CorruptionEvent, CorruptionOutcome, Disk, FlipRegion, JournalOp, JournalStats, SalvageReport,
    ScrubScan, ScrubStats, SyncPolicy,
};
use crate::location::LocationDb;
use crate::protect::{AccessList, ProtectionDomain, Rights};
use crate::proto::payload::{note_copy, payload_digest};
use crate::proto::{
    CallbackBreak, EntryKind, Payload, ServerId, VStatus, ViceError, ViceReply, ViceRequest,
};
use crate::volume::{Volume, VolumeError, VolumeId};
use itc_rpc::{NodeId, RpcStats};
use itc_sim::{Costs, Resource, SimTime, TraversalMode, ValidationMode};
use itc_unixfs::{FileType, FsError};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, RwLock};

/// A request parked on the server's explicit queue, awaiting dispatch by
/// the event scheduler. The body is still wire bytes: decoding happens at
/// service time, exactly where a real server would parse the datagram it
/// dequeued.
#[derive(Debug)]
pub struct QueuedRequest {
    /// Authenticated caller (identity comes from the binding, never the
    /// request).
    pub user: String,
    /// The caller's network node.
    pub from: NodeId,
    /// Idempotency token framed ahead of the request body.
    pub token: u64,
    /// Causal trace identity carried in the call frame
    /// ([`itc_sim::TraceId::NONE`] when the client had tracing off).
    pub trace: itc_sim::TraceId,
    /// Undecoded request head (everything but file contents).
    pub body: Vec<u8>,
    /// The request's out-of-band bulk payload, shared by refcount with the
    /// client's copy (a `Store`'s file bytes ride here, uncopied).
    pub payload: Option<Payload>,
    /// When the request arrived at this server.
    pub arrived: SimTime,
}

/// Upper bound on remembered mutation replies. Retries of one logical call
/// are immediate (within the same pumped exchange), so a FIFO window this
/// deep can never evict an entry a live retry still needs; without a bound
/// the cache grows by one entry per mutation forever.
const REPLAY_CAP: usize = 1024;

/// Cost components of one handled call, consumed by the timing kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallCost {
    /// Handler CPU beyond fixed dispatch.
    pub server_cpu: SimTime,
    /// Bytes moved through the server disk.
    pub disk_bytes: u64,
    /// Whether the lock-server process was consulted.
    pub lock_ipc: bool,
}

/// A Vice cluster server.
#[derive(Debug)]
pub struct Server {
    id: ServerId,
    node: NodeId,
    cpu: Resource,
    disk: Resource,
    volumes: Vec<Volume>,
    location: LocationDb,
    domain: Arc<RwLock<ProtectionDomain>>,
    /// Outstanding callback promises. A `BTreeMap` of `BTreeSet`s, not
    /// hash collections: break fan-out feeds the event calendars, so every
    /// iteration here must be a function of the seed alone.
    callbacks: BTreeMap<String, BTreeSet<NodeId>>,
    locks: LockTable,
    stats: RpcStats,
    validation: ValidationMode,
    traversal: TraversalMode,
    pending_breaks: Vec<(NodeId, CallbackBreak)>,
    /// Batch break notifications per recipient workstation (see
    /// [`crate::SystemConfig::callback_break_batching`]).
    break_batching: bool,
    next_volume_id: u32,
    online: bool,
    /// Incarnation counter, bumped on every crash. Venus compares this to
    /// the epoch it last saw to detect that the server lost its callback
    /// state while the workstation wasn't looking.
    epoch: u64,
    /// Replies to recently applied mutations, keyed by the caller's
    /// workstation and idempotency token. A retried mutation whose reply
    /// was lost is answered from here instead of being applied twice.
    replay: HashMap<(NodeId, u64), ViceReply>,
    /// Insertion order of `replay` keys; the oldest entry is dropped once
    /// the cache exceeds `REPLAY_CAP`.
    replay_order: VecDeque<(NodeId, u64)>,
    /// Requests that have arrived but not yet been dispatched. The event
    /// scheduler enqueues on request arrival and dequeues on service
    /// dispatch, so queue depth is an observable of the simulation.
    queue: VecDeque<QueuedRequest>,
    /// Largest queue depth observed in the current incarnation.
    queue_high_water: usize,
    /// High-water marks of finished incarnations, as `(epoch, high_water)`
    /// — the stat is reset per incarnation so experiments never mix
    /// pre-crash and post-crash load.
    queue_history: Vec<(u64, usize)>,
    /// The durable storage under the volumes: checkpoints plus the
    /// write-ahead journal.
    storage: Disk,
    /// Volumes taken offline by a crash and not yet salvaged.
    salvage_pending: Vec<VolumeId>,
    /// Reports of completed salvage passes, in completion order.
    salvage_reports: Vec<SalvageReport>,
    /// Background scrubber rotation cursor (index into the disk's
    /// ascending volume list; one volume is scanned per pass).
    scrub_cursor: usize,
    /// Running scrubber counters.
    scrub_stats: ScrubStats,
    /// Ledger of injected silent corruptions and their detection fates —
    /// the evidence behind the "zero undetected" acceptance sweep.
    corruption_log: Vec<CorruptionEvent>,
    /// Volumes an integrity verifier just took offline, as `(volume,
    /// path)`; drained by the transport to freeze `IntegrityFault`
    /// anomalies.
    integrity_events: Vec<(VolumeId, String)>,
}

impl Server {
    /// Creates a server with no volumes.
    pub fn new(
        id: ServerId,
        node: NodeId,
        domain: Arc<RwLock<ProtectionDomain>>,
        validation: ValidationMode,
        traversal: TraversalMode,
    ) -> Server {
        Server {
            id,
            node,
            cpu: Resource::new(format!("server{}-cpu", id.0)),
            disk: Resource::new(format!("server{}-disk", id.0)),
            volumes: Vec::new(),
            location: LocationDb::new(),
            domain,
            callbacks: BTreeMap::new(),
            locks: LockTable::new(),
            stats: RpcStats::new(),
            validation,
            traversal,
            pending_breaks: Vec::new(),
            break_batching: false,
            next_volume_id: id.0 * 10_000,
            online: true,
            epoch: 0,
            replay: HashMap::new(),
            replay_order: VecDeque::new(),
            queue: VecDeque::new(),
            queue_high_water: 0,
            queue_history: Vec::new(),
            storage: Disk::new(SyncPolicy::WriteAhead),
            salvage_pending: Vec::new(),
            salvage_reports: Vec::new(),
            scrub_cursor: 0,
            scrub_stats: ScrubStats::default(),
            corruption_log: Vec::new(),
            integrity_events: Vec::new(),
        }
    }

    /// Parks an arrived request on the explicit queue until the event
    /// scheduler dispatches it.
    pub fn enqueue_request(&mut self, req: QueuedRequest) {
        self.queue.push_back(req);
        self.queue_high_water = self.queue_high_water.max(self.queue.len());
    }

    /// Takes the oldest queued request for service.
    pub fn dequeue_request(&mut self) -> Option<QueuedRequest> {
        self.queue.pop_front()
    }

    /// Requests currently awaiting dispatch.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Largest request-queue depth observed in the current incarnation
    /// (reset on every crash).
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// High-water marks of all incarnations, `(epoch, high_water)` pairs:
    /// finished incarnations first, then the live one. Experiments read
    /// this instead of [`Self::queue_high_water`] when crashes are in play,
    /// so load measured before a crash is never attributed to the
    /// incarnation after it.
    pub fn queue_high_water_history(&self) -> Vec<(u64, usize)> {
        let mut out = self.queue_history.clone();
        out.push((self.epoch, self.queue_high_water));
        out
    }

    /// Whether the machine is up (the availability goal of Section 2.2:
    /// single machine failures must only affect "small groups of users").
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Takes the whole server down or brings it back.
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Simulates a machine crash: the server goes down and all in-memory
    /// state dies with it — callback promises (Section 3.2: callback state
    /// is soft and must be reconstructible), the mutation replay cache,
    /// advisory locks, and undelivered callback breaks. Files and
    /// directories live on disk, but *only* to the extent the write-ahead
    /// journal was forced: of the unsynced journal window, exactly `torn`
    /// bytes made it to the platter (the fault plan's seed-controlled
    /// torn-write point), and the log is truncated at the last complete
    /// committed record within them. Every volume goes offline until a
    /// salvage pass rebuilds it from checkpoint + surviving journal. The
    /// incarnation epoch is bumped so workstations discover the loss on
    /// next contact and revalidate their caches. Returns the journal bytes
    /// discarded.
    pub fn crash_with_torn(&mut self, torn: u64) -> u64 {
        // Close out this incarnation's queue statistics before the epoch
        // bump: the next incarnation starts its own high-water mark.
        self.queue_history.push((self.epoch, self.queue_high_water));
        self.queue_high_water = 0;
        self.online = false;
        self.epoch += 1;
        self.callbacks.clear();
        self.replay.clear();
        self.replay_order.clear();
        self.locks = LockTable::new();
        self.pending_breaks.clear();
        self.queue.clear();
        let discarded = self.storage.crash_truncate(torn);
        for v in &mut self.volumes {
            v.set_online(false);
        }
        self.salvage_pending = self.volumes.iter().map(Volume::id).collect();
        discarded
    }

    /// [`Self::crash_with_torn`] with a fully synced log (nothing to tear)
    /// — the operator-initiated clean crash.
    pub fn crash(&mut self) {
        self.crash_with_torn(0);
    }

    /// Brings a crashed server back up. The machine answers the network
    /// again, but its volumes stay offline until salvaged — callers see
    /// [`ViceError::VolumeOffline`] in the window between restart and the
    /// completion of each volume's salvage pass.
    pub fn restart(&mut self) {
        self.online = true;
    }

    /// Volumes awaiting salvage, in installation order.
    pub fn salvage_pending(&self) -> &[VolumeId] {
        &self.salvage_pending
    }

    /// Replay work a salvage of `vid` would do, as `(records, bytes)` —
    /// the inputs to [`itc_sim::Costs::salvage_time`].
    pub fn salvage_work(&self, vid: VolumeId) -> (u64, u64) {
        self.storage.salvage_work(vid)
    }

    /// Salvages one volume: rebuilds it from its checkpoint plus the
    /// surviving committed journal records, verifies invariants, and swaps
    /// the rebuilt (online) image in. Returns the report, or `None` if the
    /// disk holds no checkpoint for `vid`.
    pub fn salvage_volume(&mut self, vid: VolumeId) -> Option<SalvageReport> {
        self.salvage_pending.retain(|&v| v != vid);
        let (vol, report) = self.storage.salvage(vid)?;
        if let Some(slot) = self.volumes.iter_mut().find(|v| v.id() == vid) {
            *slot = vol;
        }
        self.salvage_reports.push(report.clone());
        Some(report)
    }

    /// Salvages every pending volume immediately (the operator-driven
    /// path; the event calendar drives per-volume passes with timing).
    pub fn salvage_all(&mut self) -> Vec<SalvageReport> {
        let pending = std::mem::take(&mut self.salvage_pending);
        pending
            .into_iter()
            .filter_map(|vid| self.salvage_volume(vid))
            .collect()
    }

    /// Reports of completed salvage passes, oldest first.
    pub fn salvage_reports(&self) -> &[SalvageReport] {
        &self.salvage_reports
    }

    /// Journal counters of the server's disk.
    pub fn journal_stats(&self) -> JournalStats {
        self.storage.journal().stats()
    }

    /// Journal bytes a crash right now could tear.
    pub fn unsynced_journal_bytes(&self) -> u64 {
        self.storage.unsynced()
    }

    /// The journal sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.storage.policy()
    }

    /// Switches the journal sync policy.
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.storage.set_policy(policy);
    }

    /// Forces the journal per policy; the transport layer calls this when
    /// a dispatched request completes, *before* the reply departs — the
    /// write-ahead guarantee that no acknowledged mutation can be torn.
    /// Under [`SyncPolicy::Lazy`] this is a no-op.
    pub fn sync_journal(&mut self) {
        if self.storage.policy() == SyncPolicy::WriteAhead {
            self.storage.sync();
        }
    }

    /// Routes one mutation through the write-ahead journal: intent record,
    /// apply to the in-memory volume, commit/abort trailer.
    fn journal_apply(&mut self, vol_idx: usize, op: JournalOp) -> Result<(), VolumeError> {
        let vid = self.volumes[vol_idx].id();
        let seq = self.storage.begin(vid, op.clone());
        let res = op.apply(&mut self.volumes[vol_idx]);
        self.storage.commit(seq, res.is_ok());
        res
    }

    /// Journals an administrative mutation against volume `vid` and forces
    /// it durable immediately (operator actions never sit in the unsynced
    /// window, whatever the policy).
    pub fn admin_apply(&mut self, vid: VolumeId, op: JournalOp) -> Result<(), VolumeError> {
        let idx = self
            .volumes
            .iter()
            .position(|v| v.id() == vid)
            .ok_or(VolumeError::Offline)?;
        let res = self.journal_apply(idx, op);
        self.storage.sync();
        res
    }

    /// The server's incarnation epoch (crash count).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    // ------------------------------------------------------------------
    // End-to-end integrity: corruption injection, scrubbing, repair
    // ------------------------------------------------------------------

    /// Read access to the durable storage (checkpoints + journal).
    pub fn storage(&self) -> &Disk {
        &self.storage
    }

    /// Total durable bytes a silent flip could land in (see
    /// [`Disk::durable_extent`]).
    pub fn durable_extent(&self) -> u64 {
        self.storage.durable_extent()
    }

    /// Lands one silent flip on the durable address space and logs it in
    /// the corruption ledger as latent (undetected). Returns where the
    /// damage landed, or `None` when the offset fell outside every region.
    pub fn apply_corruption(&mut self, at: SimTime, offset: u64, mask: u8) -> Option<FlipRegion> {
        let region = self.storage.apply_flip(offset, mask)?;
        self.corruption_log.push(CorruptionEvent {
            injected_at: at,
            region: region.clone(),
            detected_at: None,
            outcome: CorruptionOutcome::Latent,
        });
        Some(region)
    }

    /// The corruption ledger, injection order.
    pub fn corruption_log(&self) -> &[CorruptionEvent] {
        &self.corruption_log
    }

    /// Marks every still-latent ledger entry matching `pred` as detected
    /// at `at` with the given outcome. Returns how many were marked.
    pub fn mark_corruptions_detected(
        &mut self,
        at: SimTime,
        outcome: CorruptionOutcome,
        pred: impl Fn(&FlipRegion) -> bool,
    ) -> u64 {
        let mut marked = 0;
        for ev in &mut self.corruption_log {
            if ev.outcome == CorruptionOutcome::Latent && pred(&ev.region) {
                ev.detected_at = Some(at);
                ev.outcome = outcome;
                marked += 1;
            }
        }
        marked
    }

    /// The volume the scrubber's rotation visits next (ascending volume
    /// id, one per pass); advances the cursor. `None` on a diskless
    /// server.
    pub fn next_scrub_volume(&mut self) -> Option<VolumeId> {
        let vids = self.storage.volumes_on_disk();
        if vids.is_empty() {
            return None;
        }
        let vid = vids[self.scrub_cursor % vids.len()];
        self.scrub_cursor = (self.scrub_cursor + 1) % vids.len();
        Some(vid)
    }

    /// Runs the digest scan of one scrub pass over `vid`'s checkpoint
    /// image and folds the scan into the running counters. Repair of any
    /// findings is the transport layer's job (it can see other servers'
    /// replicas).
    pub fn scrub_scan(&mut self, vid: VolumeId) -> Option<ScrubScan> {
        let scan = self.storage.scrub_volume(vid)?;
        self.scrub_stats.passes += 1;
        self.scrub_stats.volumes_scanned += 1;
        self.scrub_stats.files_scanned += scan.files;
        self.scrub_stats.bytes_scanned += scan.bytes;
        self.scrub_stats.mismatches_detected += scan.findings.len() as u64;
        Some(scan)
    }

    /// Scrubber counters.
    pub fn scrub_stats(&self) -> ScrubStats {
        self.scrub_stats
    }

    /// Repairs one file of `vid` with bytes a replica vouched for: the
    /// checkpoint image is restored quietly, and the live volume too if
    /// its copy of the file also fails the digest. Counts toward the
    /// scrubber's repair stat.
    pub fn repair_file(&mut self, vid: VolumeId, path: &str, data: Vec<u8>) -> bool {
        let expected = payload_digest(&data);
        let repaired = self.storage.repair_checkpoint_file(vid, path, data.clone());
        if let Some(vol) = self.volume_mut(vid) {
            let live_damaged = vol
                .fs()
                .read(path)
                .map(|cur| payload_digest(&cur) != expected)
                .unwrap_or(false);
            if live_damaged {
                vol.restore_file(path, data);
            }
        }
        if repaired {
            self.scrub_stats.repaired += 1;
        }
        repaired
    }

    /// Terminal state of an unrepairable corruption: the volume (live
    /// image and checkpoint) goes offline rather than serve bytes nothing
    /// can vouch for, and an integrity event is queued for the transport
    /// to surface as an `IntegrityFault` anomaly.
    pub fn offline_volume_for_integrity(&mut self, vid: VolumeId, path: &str) {
        if let Some(vol) = self.volume_mut(vid) {
            vol.set_online(false);
        }
        self.storage.offline_checkpoint(vid);
        self.scrub_stats.offlined += 1;
        self.integrity_events.push((vid, path.to_string()));
    }

    /// Takes the integrity events queued since the last drain.
    pub fn drain_integrity_events(&mut self) -> Vec<(VolumeId, String)> {
        std::mem::take(&mut self.integrity_events)
    }

    /// Looks up a remembered reply for a retried mutation.
    pub fn replay_lookup(&self, from: NodeId, token: u64) -> Option<&ViceReply> {
        self.replay.get(&(from, token))
    }

    /// Remembers the reply to an applied mutation for future replays. The
    /// cache is bounded: once it holds `REPLAY_CAP` entries the oldest is
    /// evicted, FIFO. (An entry only protects against retries of its own
    /// logical call, which happen immediately; anything old enough to be
    /// evicted can no longer be retried.)
    pub fn replay_record(&mut self, from: NodeId, token: u64, reply: ViceReply) {
        if self.replay.insert((from, token), reply).is_none() {
            self.replay_order.push_back((from, token));
        }
        while self.replay.len() > REPLAY_CAP {
            let oldest = self.replay_order.pop_front().expect("order tracks map");
            self.replay.remove(&oldest);
        }
    }

    /// Number of remembered mutation replies (for tests).
    pub fn replay_entries(&self) -> usize {
        self.replay.len()
    }

    /// Server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Network node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The server's CPU resource (shared with the timing kernel).
    pub fn cpu(&self) -> &Resource {
        &self.cpu
    }

    /// The server's disk resource.
    pub fn disk(&self) -> &Resource {
        &self.disk
    }

    /// Call statistics.
    pub fn stats(&self) -> &RpcStats {
        &self.stats
    }

    /// The server's replica of the location database.
    pub fn location(&self) -> &LocationDb {
        &self.location
    }

    /// Mutable location database (the system layer updates every server's
    /// replica together, charging replication time).
    pub fn location_mut(&mut self) -> &mut LocationDb {
        &mut self.location
    }

    /// Allocates a fresh volume id unique to this server.
    pub fn alloc_volume_id(&mut self) -> VolumeId {
        let id = VolumeId(self.next_volume_id);
        self.next_volume_id += 1;
        id
    }

    /// Installs a volume on this server. The disk checkpoints the image
    /// as-installed, so a crash before any journaled mutation salvages
    /// back to exactly this state.
    pub fn add_volume(&mut self, volume: Volume) {
        self.storage.checkpoint(&volume);
        self.volumes.push(volume);
    }

    /// Removes a volume by id (for moves), returning it. Its checkpoint
    /// leaves the disk with it.
    pub fn take_volume(&mut self, id: VolumeId) -> Option<Volume> {
        let idx = self.volumes.iter().position(|v| v.id() == id)?;
        self.storage.drop_volume(id);
        self.salvage_pending.retain(|&v| v != id);
        Some(self.volumes.remove(idx))
    }

    /// Re-checkpoints a hosted volume after an out-of-band mutation that
    /// legitimately bypasses the journal (cloning bumps the source's
    /// serial; a replica refresh rewrites its whole tree).
    pub fn recheckpoint(&mut self, id: VolumeId) {
        if let Some(v) = self.volumes.iter().find(|v| v.id() == id) {
            self.storage.checkpoint(v);
        }
    }

    /// The hosted volumes.
    pub fn volumes(&self) -> &[Volume] {
        &self.volumes
    }

    /// The id of the hosted volume covering `vice_path`, if any — the most
    /// specific mount wins when volumes nest. Read-only: used by the
    /// tracing layer to attribute a call to a volume.
    pub fn volume_covering(&self, vice_path: &str) -> Option<VolumeId> {
        self.volumes
            .iter()
            .filter(|v| v.covers(vice_path))
            .max_by_key(|v| v.mount().len())
            .map(Volume::id)
    }

    /// Mutable access to a hosted volume by id.
    pub fn volume_mut(&mut self, id: VolumeId) -> Option<&mut Volume> {
        self.volumes.iter_mut().find(|v| v.id() == id)
    }

    /// Finds the hosted volume covering `path`, preferring the longest
    /// mount and, among equals, a writable volume over a read-only replica
    /// when `want_write`.
    fn volume_for(&self, path: &str, want_write: bool) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, v) in self.volumes.iter().enumerate() {
            if !v.covers(path) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let bv = &self.volumes[b];
                    let longer = v.mount().len() > bv.mount().len();
                    let same = v.mount().len() == bv.mount().len();
                    longer || (same && want_write && bv.is_read_only() && !v.is_read_only())
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Takes the callback breaks generated by recent calls; the system
    /// layer delivers them (one-way messages) and invalidates caches.
    pub fn drain_breaks(&mut self) -> Vec<(NodeId, CallbackBreak)> {
        std::mem::take(&mut self.pending_breaks)
    }

    /// Enables or disables per-recipient break batching.
    pub fn set_break_batching(&mut self, on: bool) {
        self.break_batching = on;
    }

    /// Whether break notifications are batched per recipient.
    pub fn break_batching(&self) -> bool {
        self.break_batching
    }

    /// Number of callback promises currently outstanding (server state the
    /// check-on-open design avoids, at the price of validation traffic).
    pub fn callback_promises(&self) -> usize {
        self.callbacks.values().map(BTreeSet::len).sum()
    }

    /// Records statistics for a completed call (invoked by the system layer
    /// once timing is known).
    pub fn record_call(&self, kind: &str, req_bytes: u64, reply_bytes: u64, elapsed: SimTime) {
        self.stats.record(kind, req_bytes, reply_bytes, elapsed);
    }

    // ------------------------------------------------------------------
    // Request handling
    // ------------------------------------------------------------------

    /// Handles one authenticated request.
    ///
    /// * `user` — identity from the RPC binding (never from the request).
    /// * `from` — the workstation's node id (for callback promises).
    /// * `now` — virtual time, used for mtimes.
    /// * `costs` — cost table for computing the CPU charge of this call.
    pub fn handle(
        &mut self,
        user: &str,
        from: NodeId,
        req: &ViceRequest,
        now: SimTime,
        costs: &Costs,
    ) -> (ViceReply, CallCost) {
        let mut cost = CallCost::default();
        let reply = self.dispatch(user, from, req, now, costs, &mut cost);
        (reply, cost)
    }

    fn charge_traversal(&self, costs: &Costs, cost: &mut CallCost, path: &str, walked: u32) {
        if self.traversal == TraversalMode::ServerSide {
            // Mount-prefix components plus components walked inside the
            // volume; the prototype's servers walked the whole pathname.
            let prefix = path.split('/').filter(|c| !c.is_empty()).count() as u32;
            cost.server_cpu += costs.srv_cpu_per_component * (walked + prefix) as u64;
        }
    }

    fn cps_of(&self, user: &str) -> Vec<String> {
        let mut cps = self
            .domain
            .read()
            .expect("protection domain lock")
            .cps(user);
        // "System:AnyUser"-style blanket entries are common on ACLs; every
        // authenticated principal implicitly carries it.
        cps.push("anyuser".to_string());
        cps
    }

    fn check_rights(
        &self,
        user: &str,
        acl: &AccessList,
        needed: Rights,
        path: &str,
    ) -> Result<(), ViceError> {
        let cps = self.cps_of(user);
        let eff = acl.effective_rights(cps.iter().map(String::as_str));
        if eff.covers(needed) {
            Ok(())
        } else {
            Err(ViceError::PermissionDenied(path.to_string()))
        }
    }

    fn map_vol_err(path: &str, e: VolumeError) -> ViceError {
        match e {
            VolumeError::Fs(fs) => map_fs_err(path, fs),
            VolumeError::ReadOnly => ViceError::ReadOnlyVolume(path.to_string()),
            VolumeError::Offline => ViceError::VolumeOffline(path.to_string()),
            VolumeError::QuotaExceeded { .. } => ViceError::QuotaExceeded(path.to_string()),
        }
    }

    fn status_of(vol: &Volume, internal: &str) -> Result<VStatus, ViceError> {
        let vice_path = vol.vice_path(internal);
        let fs = vol
            .fs_read()
            .map_err(|e| Self::map_vol_err(&vice_path, e))?;
        let attr = fs.lstat(internal).map_err(|e| map_fs_err(&vice_path, e))?;
        Ok(VStatus {
            path: vice_path,
            fid: attr.ino.0,
            kind: match attr.ftype {
                FileType::Regular => EntryKind::File,
                FileType::Directory => EntryKind::Dir,
                FileType::Symlink => EntryKind::Symlink,
            },
            size: attr.size,
            version: attr.version,
            mtime: attr.mtime,
            mode: attr.mode.0,
            owner: attr.uid,
            read_only: vol.is_read_only(),
        })
    }

    /// Registers a callback promise for `from` on `path` (callback mode
    /// only).
    fn promise(&mut self, path: &str, from: NodeId, costs: &Costs, cost: &mut CallCost) {
        if self.validation == ValidationMode::Callback {
            self.callbacks
                .entry(path.to_string())
                .or_default()
                .insert(from);
            cost.server_cpu += costs.srv_cpu_callback;
        }
    }

    /// Breaks callbacks on `path` (and its parent directory, whose cached
    /// listing is stale too), excluding the mutating workstation.
    fn break_callbacks(
        &mut self,
        path: &str,
        new_version: u64,
        from: NodeId,
        costs: &Costs,
        cost: &mut CallCost,
    ) {
        if self.validation != ValidationMode::Callback {
            return;
        }
        let mut targets: Vec<String> = vec![path.to_string()];
        if let Ok((parent, _)) = itc_unixfs::dirname_basename(path) {
            targets.push(parent);
        }
        let mut charged: Vec<NodeId> = Vec::new();
        for target in targets {
            if let Some(holders) = self.callbacks.remove(&target) {
                // BTreeSet iteration is already sorted; the explicit sort
                // documents that break order must stay seed-deterministic.
                let mut holders: Vec<NodeId> = holders.into_iter().collect();
                holders.sort_unstable();
                for ws in holders {
                    if ws != from {
                        if self.break_batching {
                            // Batched: one notification per recipient
                            // workstation for this mutation, however many
                            // of its promises just died.
                            if !charged.contains(&ws) {
                                charged.push(ws);
                                cost.server_cpu += costs.srv_cpu_callback;
                            }
                        } else {
                            cost.server_cpu += costs.srv_cpu_callback;
                        }
                        self.pending_breaks.push((
                            ws,
                            CallbackBreak {
                                path: target.clone(),
                                new_version,
                            },
                        ));
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(
        &mut self,
        user: &str,
        from: NodeId,
        req: &ViceRequest,
        now: SimTime,
        costs: &Costs,
        cost: &mut CallCost,
    ) -> ViceReply {
        // Custodian location is answerable even for paths we do not host.
        if let ViceRequest::GetCustodian { path } = req {
            return match self.location.lookup(path) {
                Some((subtree, entry)) => ViceReply::Custodian {
                    subtree: subtree.to_string(),
                    custodian: entry.custodian,
                    replicas: entry.replicas.clone(),
                },
                None => ViceReply::Error(ViceError::NoSuchFile(path.clone())),
            };
        }

        let path = req.path();
        let want_write = matches!(
            req,
            ViceRequest::Store { .. }
                | ViceRequest::Remove { .. }
                | ViceRequest::SetMode { .. }
                | ViceRequest::MakeDir { .. }
                | ViceRequest::RemoveDir { .. }
                | ViceRequest::Rename { .. }
                | ViceRequest::SetAcl { .. }
                | ViceRequest::MakeSymlink { .. }
        );
        let Some(vol_idx) = self.volume_for(path, want_write) else {
            // Not ours: answer with the custodian hint, as Section 3.1
            // specifies.
            let hint = self.location.custodian_of(path);
            return ViceReply::Error(ViceError::NotCustodian(hint));
        };

        // The location database is authoritative: if it assigns a *deeper*
        // subtree than the volume we would serve from, that subtree lives
        // elsewhere (e.g. a user volume that moved away) and the enclosing
        // volume's stub directory must not shadow it.
        if let Some((subtree, entry)) = self.location.lookup(path) {
            let our_mount_len = self.volumes[vol_idx].mount().len();
            if subtree.len() > our_mount_len
                && entry.custodian != self.id
                && !entry.replicas.contains(&self.id)
            {
                return ViceReply::Error(ViceError::NotCustodian(Some(entry.custodian)));
            }
        }

        // Protection is evaluated on every call.
        cost.server_cpu += costs.srv_cpu_protection;

        match req {
            ViceRequest::GetCustodian { .. } => unreachable!("handled above"),

            ViceRequest::Fetch { path } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::READ, path) {
                    return ViceReply::Error(e);
                }
                let vol = &self.volumes[vol_idx];
                let fs = match vol.fs_read() {
                    Ok(f) => f,
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                // Do not follow a final symlink: Venus interprets links
                // itself (they may point into other volumes on other
                // servers).
                let resolved = match fs.resolve(&internal, false) {
                    Ok(r) => r,
                    Err(e) => return ViceReply::Error(map_fs_err(path, e)),
                };
                self.charge_traversal(costs, cost, path, resolved.components_walked);
                let attr = fs.attr_of(resolved.ino).expect("resolved").clone();
                match attr.ftype {
                    FileType::Regular => {
                        // The one genuine copy on the fetch path: reading
                        // the file out of the volume. From here to the
                        // client's cache the bytes travel by refcount.
                        let data = fs.read_ino(resolved.ino).expect("regular file");
                        // End-to-end check: the bytes leaving the platter
                        // must match the volume's Merkle leaf before they
                        // can reach Venus. A mismatch means silent rot got
                        // past every earlier verifier — serve nothing,
                        // take the volume offline, surface the fault.
                        let key =
                            itc_unixfs::normalize(&internal).unwrap_or_else(|_| internal.clone());
                        if let Some(expected) = self.volumes[vol_idx].merkle().leaf(&key) {
                            if payload_digest(&data) != expected {
                                let vid = self.volumes[vol_idx].id();
                                self.offline_volume_for_integrity(vid, &key);
                                self.mark_corruptions_detected(
                                    now,
                                    CorruptionOutcome::CaughtAtFetch,
                                    |r| match r {
                                        FlipRegion::CheckpointFile { volume, path }
                                        | FlipRegion::MerkleLeaf { volume, path } => {
                                            *volume == vid && path == &key
                                        }
                                        FlipRegion::Journal { .. } => false,
                                    },
                                );
                                return ViceReply::Error(ViceError::VolumeOffline(path.clone()));
                            }
                        }
                        note_copy(data.len());
                        cost.server_cpu += costs.srv_block_cpu(data.len() as u64);
                        cost.disk_bytes = data.len() as u64;
                        let status = match Self::status_of(&self.volumes[vol_idx], &internal) {
                            Ok(s) => s,
                            Err(e) => return ViceReply::Error(e),
                        };
                        self.promise(path, from, costs, cost);
                        ViceReply::Data {
                            status,
                            data: Payload::from_vec(data),
                        }
                    }
                    FileType::Directory => {
                        // Directories are fetchable as serialized listings:
                        // "a directory stored as a Vice file is easier to
                        // interpret when the whole file is available"
                        // (Section 3.2). Venus uses this for client-side
                        // traversal.
                        let listing = fs.readdir(&internal).expect("is a directory");
                        let mut blob = Vec::new();
                        for (name, ino) in &listing {
                            let kind = match fs.attr_of(*ino).expect("entry").ftype {
                                FileType::Regular => b'f',
                                FileType::Directory => b'd',
                                FileType::Symlink => b'l',
                            };
                            blob.push(kind);
                            blob.extend_from_slice(name.as_bytes());
                            blob.push(b'\n');
                        }
                        cost.server_cpu += costs.srv_block_cpu(blob.len() as u64);
                        cost.disk_bytes = blob.len() as u64;
                        let status = match Self::status_of(&self.volumes[vol_idx], &internal) {
                            Ok(s) => s,
                            Err(e) => return ViceReply::Error(e),
                        };
                        self.promise(path, from, costs, cost);
                        ViceReply::Data {
                            status,
                            data: Payload::from_vec(blob),
                        }
                    }
                    FileType::Symlink => {
                        let target = fs.readlink(&internal).expect("is a symlink");
                        ViceReply::Link(link_target_to_vice(vol, path, &target))
                    }
                }
            }

            ViceRequest::Store { path, data } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                let exists = vol.fs().exists(&internal);
                let needed = if exists {
                    Rights::WRITE
                } else {
                    Rights::INSERT
                };
                if let Err(e) = self.check_rights(user, &acl, needed, path) {
                    return ViceReply::Error(e);
                }
                if self.traversal == TraversalMode::ServerSide {
                    let walked = path.split('/').filter(|c| !c.is_empty()).count() as u32;
                    cost.server_cpu += costs.srv_cpu_per_component * walked as u64;
                }
                cost.server_cpu += costs.srv_block_cpu(data.len() as u64);
                cost.disk_bytes = data.len() as u64;
                let uid = uid_of(user);
                // Intent → apply → commit: the journal record holds the
                // payload by refcount; the one genuine copy on the store
                // path happens when the op is applied to the volume.
                let op = JournalOp::Store {
                    path: internal.clone(),
                    uid,
                    mtime: now.as_micros(),
                    data: data.clone(),
                };
                match self.journal_apply(vol_idx, op) {
                    Ok(()) => {
                        let status = match Self::status_of(&self.volumes[vol_idx], &internal) {
                            Ok(s) => s,
                            Err(e) => return ViceReply::Error(e),
                        };
                        let v = status.version;
                        self.break_callbacks(path, v, from, costs, cost);
                        // The storing workstation's own copy is current; it
                        // gets a fresh promise.
                        self.promise(path, from, costs, cost);
                        ViceReply::Status(status)
                    }
                    Err(e) => ViceReply::Error(Self::map_vol_err(path, e)),
                }
            }

            ViceRequest::Remove { path } => self.mutate_entry(
                user,
                from,
                vol_idx,
                path,
                Rights::DELETE,
                costs,
                cost,
                now,
                |internal, t| JournalOp::Remove {
                    path: internal.to_string(),
                    mtime: t,
                },
            ),

            ViceRequest::GetStatus { path } => {
                cost.server_cpu += costs.srv_cpu_getstatus;
                // The prototype stored status in per-file .admin files:
                // answering a status query touches the server disk.
                cost.disk_bytes = 2_048;
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::READ, path) {
                    return ViceReply::Error(e);
                }
                if let Ok(r) = self.volumes[vol_idx].fs().resolve(&internal, false) {
                    self.charge_traversal(costs, cost, path, r.components_walked);
                }
                match Self::status_of(&self.volumes[vol_idx], &internal) {
                    Ok(s) => ViceReply::Status(s),
                    Err(e) => ViceReply::Error(e),
                }
            }

            ViceRequest::SetMode { path, mode } => self.mutate_entry(
                user,
                from,
                vol_idx,
                path,
                Rights::WRITE,
                costs,
                cost,
                now,
                |internal, t| JournalOp::SetMode {
                    path: internal.to_string(),
                    mode: *mode as u32,
                    mtime: t,
                },
            ),

            ViceRequest::Validate { path, fid, version } => {
                cost.server_cpu += costs.srv_cpu_validate;
                // Timestamp comparison reads the .admin file from disk.
                cost.disk_bytes = 2_048;
                // The prototype's servers walked the entire pathname on
                // every call — including the dominant validation calls.
                if self.traversal == TraversalMode::ServerSide {
                    let walked = path.split('/').filter(|c| !c.is_empty()).count() as u32;
                    cost.server_cpu += costs.srv_cpu_per_component * walked as u64;
                }
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                // Protection is re-checked on validation too: a revoked
                // user must not keep using his cached copy by having the
                // server confirm it is "current".
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::READ, path) {
                    return ViceReply::Error(e);
                }
                let vol = &self.volumes[vol_idx];
                match Self::status_of(vol, &internal) {
                    Ok(status) => {
                        // Both the identity and the version must match: a
                        // deleted-and-recreated file has a new fid, so a
                        // stale cache can never validate against it.
                        let valid = status.fid == *fid && status.version == *version;
                        self.promise(path, from, costs, cost);
                        ViceReply::Validated {
                            valid,
                            status: (!valid).then_some(status),
                        }
                    }
                    Err(e) => ViceReply::Error(e),
                }
            }

            ViceRequest::MakeDir { path } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                // A volume's mount root always exists (clients walking
                // down with mkdir -p hit this for mounted user volumes).
                if internal == "/" {
                    return ViceReply::Error(ViceError::AlreadyExists(path.clone()));
                }
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::INSERT, path) {
                    return ViceReply::Error(e);
                }
                let uid = uid_of(user);
                let op = JournalOp::Mkdir {
                    path: internal.clone(),
                    uid,
                    mtime: now.as_micros(),
                };
                match self.journal_apply(vol_idx, op) {
                    Ok(()) => {
                        let path_owned = path.clone();
                        self.break_callbacks(&path_owned, 1, from, costs, cost);
                        match Self::status_of(&self.volumes[vol_idx], &internal) {
                            Ok(s) => ViceReply::Status(s),
                            Err(e) => ViceReply::Error(e),
                        }
                    }
                    Err(e) => ViceReply::Error(Self::map_vol_err(path, e)),
                }
            }

            ViceRequest::RemoveDir { path } => self.mutate_entry(
                user,
                from,
                vol_idx,
                path,
                Rights::DELETE,
                costs,
                cost,
                now,
                |internal, t| JournalOp::Rmdir {
                    path: internal.to_string(),
                    mtime: t,
                },
            ),

            ViceRequest::Rename { from: src, to: dst } => {
                let vol = &self.volumes[vol_idx];
                // Renames must stay within one volume (as in AFS proper).
                let (Some(si), Some(di)) = (vol.internal_path(src), vol.internal_path(dst)) else {
                    return ViceReply::Error(ViceError::BadRequest(
                        "rename must stay within one volume".to_string(),
                    ));
                };
                let src_acl = match vol.acl_for(&si) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(src, e)),
                };
                let dst_acl = match vol.acl_for(&di) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(dst, e)),
                };
                if let Err(e) = self.check_rights(user, &src_acl, Rights::DELETE, src) {
                    return ViceReply::Error(e);
                }
                if let Err(e) = self.check_rights(user, &dst_acl, Rights::INSERT, dst) {
                    return ViceReply::Error(e);
                }
                let op = JournalOp::Rename {
                    from: si,
                    to: di,
                    mtime: now.as_micros(),
                };
                match self.journal_apply(vol_idx, op) {
                    Ok(()) => {
                        let (s, d) = (src.clone(), dst.clone());
                        self.break_callbacks(&s, 0, from, costs, cost);
                        self.break_callbacks(&d, 0, from, costs, cost);
                        ViceReply::Ok
                    }
                    Err(e) => ViceReply::Error(Self::map_vol_err(src, e)),
                }
            }

            ViceRequest::ListDir { path } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::READ, path) {
                    return ViceReply::Error(e);
                }
                let vol = &self.volumes[vol_idx];
                let fs = match vol.fs_read() {
                    Ok(f) => f,
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                match fs.readdir(&internal) {
                    Ok(entries) => {
                        if let Ok(r) = fs.resolve(&internal, true) {
                            self.charge_traversal(costs, cost, path, r.components_walked);
                        }
                        let listing = entries
                            .into_iter()
                            .map(|(name, ino)| {
                                let kind = match fs.attr_of(ino).expect("entry").ftype {
                                    FileType::Regular => EntryKind::File,
                                    FileType::Directory => EntryKind::Dir,
                                    FileType::Symlink => EntryKind::Symlink,
                                };
                                (name, kind)
                            })
                            .collect();
                        ViceReply::Listing(listing)
                    }
                    Err(e) => ViceReply::Error(map_fs_err(path, e)),
                }
            }

            ViceRequest::GetAcl { path } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                match vol.acl_for(&internal) {
                    Ok(a) => ViceReply::Acl(a.clone()),
                    Err(e) => ViceReply::Error(Self::map_vol_err(path, e)),
                }
            }

            ViceRequest::SetAcl { path, acl } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let cur = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &cur, Rights::ADMINISTER, path) {
                    return ViceReply::Error(e);
                }
                let op = JournalOp::SetAcl {
                    path: internal.clone(),
                    acl: acl.clone(),
                };
                match self.journal_apply(vol_idx, op) {
                    Ok(()) => ViceReply::Ok,
                    Err(e) => ViceReply::Error(Self::map_vol_err(path, e)),
                }
            }

            ViceRequest::MakeSymlink { path, target } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::INSERT, path) {
                    return ViceReply::Error(e);
                }
                let uid = uid_of(user);
                let op = JournalOp::Symlink {
                    path: internal.clone(),
                    target: target.clone(),
                    uid,
                    mtime: now.as_micros(),
                };
                match self.journal_apply(vol_idx, op) {
                    Ok(()) => ViceReply::Ok,
                    Err(e) => ViceReply::Error(Self::map_vol_err(path, e)),
                }
            }

            ViceRequest::ReadLink { path } => {
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let fs = match vol.fs_read() {
                    Ok(f) => f,
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                match fs.readlink(&internal) {
                    Ok(t) => {
                        let vol = &self.volumes[vol_idx];
                        ViceReply::Link(link_target_to_vice(vol, path, &t))
                    }
                    Err(e) => ViceReply::Error(map_fs_err(path, e)),
                }
            }

            ViceRequest::SetLock { path, exclusive } => {
                cost.lock_ipc = true;
                let vol = &self.volumes[vol_idx];
                let Some(internal) = vol.internal_path(path) else {
                    return ViceReply::Error(ViceError::NoSuchFile(path.clone()));
                };
                let acl = match vol.acl_for(&internal) {
                    Ok(a) => a.clone(),
                    Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
                };
                if let Err(e) = self.check_rights(user, &acl, Rights::LOCK, path) {
                    return ViceReply::Error(e);
                }
                let kind = if *exclusive {
                    LockKind::Exclusive
                } else {
                    LockKind::Shared
                };
                if self.locks.acquire(path, user, from, kind) {
                    ViceReply::Ok
                } else {
                    ViceReply::Error(ViceError::LockConflict(path.clone()))
                }
            }

            ViceRequest::ReleaseLock { path } => {
                cost.lock_ipc = true;
                self.locks.release(path, user, from);
                ViceReply::Ok
            }
        }
    }

    /// Common shape for delete-like mutations: rights check, journal the
    /// operation (intent → apply → commit), break callbacks.
    #[allow(clippy::too_many_arguments)]
    fn mutate_entry<F>(
        &mut self,
        user: &str,
        from: NodeId,
        vol_idx: usize,
        path: &str,
        needed: Rights,
        costs: &Costs,
        cost: &mut CallCost,
        now: SimTime,
        make_op: F,
    ) -> ViceReply
    where
        F: FnOnce(&str, u64) -> JournalOp,
    {
        let vol = &self.volumes[vol_idx];
        let Some(internal) = vol.internal_path(path) else {
            return ViceReply::Error(ViceError::NoSuchFile(path.to_string()));
        };
        let acl = match vol.acl_for(&internal) {
            Ok(a) => a.clone(),
            Err(e) => return ViceReply::Error(Self::map_vol_err(path, e)),
        };
        if let Err(e) = self.check_rights(user, &acl, needed, path) {
            return ViceReply::Error(e);
        }
        let op = make_op(&internal, now.as_micros());
        match self.journal_apply(vol_idx, op) {
            Ok(()) => {
                self.break_callbacks(path, 0, from, costs, cost);
                ViceReply::Ok
            }
            Err(e) => ViceReply::Error(Self::map_vol_err(&internal, e)),
        }
    }
}

/// Translates a symlink target (as stored) into the Vice name space for
/// the client to interpret: absolute `/vice/...` targets pass through,
/// other absolute targets are volume-internal, and relative targets join
/// the link's own directory.
fn link_target_to_vice(vol: &Volume, link_vice_path: &str, target: &str) -> String {
    if target == "/vice" || target.starts_with("/vice/") {
        target.to_string()
    } else if target.starts_with('/') {
        vol.vice_path(target)
    } else {
        match itc_unixfs::dirname_basename(link_vice_path) {
            Ok((dir, _)) => itc_unixfs::join(&dir, target).unwrap_or_else(|_| target.to_string()),
            Err(_) => target.to_string(),
        }
    }
}

/// Maps a file-system error to the protocol error space.
fn map_fs_err(path: &str, e: FsError) -> ViceError {
    match e {
        FsError::NotFound(_) => ViceError::NoSuchFile(path.to_string()),
        FsError::NotADirectory(_) => ViceError::NotADirectory(path.to_string()),
        FsError::IsADirectory(_) => ViceError::IsADirectory(path.to_string()),
        FsError::AlreadyExists(_) => ViceError::AlreadyExists(path.to_string()),
        FsError::NotEmpty(_) => ViceError::NotEmpty(path.to_string()),
        FsError::SymlinkLoop(_) => ViceError::SymlinkLoop(path.to_string()),
        FsError::InvalidPath(_) => ViceError::BadRequest(format!("invalid path: {path}")),
        FsError::RenameIntoSelf(_) => ViceError::RenameIntoSelf(path.to_string()),
        FsError::NotASymlink(_) => ViceError::BadRequest(format!("not a symlink: {path}")),
    }
}

/// A stable uid for a user name (display/bookkeeping only; authorization is
/// by name through the protection domain).
pub fn uid_of(user: &str) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for b in user.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    // Avoid uid 0 so "root-looking" owners never appear by accident.
    (h | 1) & 0x7fff_ffff
}
