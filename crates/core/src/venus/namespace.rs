//! The workstation's two-part name space.
//!
//! Section 3.1 and Figure 3-2: "the local name space is the Root File
//! System of a workstation and the shared name space is mounted on a known
//! leaf directory" — `/vice`. "Certain directories and files in the local
//! name space, such as /bin and /lib, are symbolic links into /vice",
//! and the targets differ by workstation type: "On a Sun workstation, the
//! local directory /bin is a symbolic link to the remote directory
//! /vice/unix/sun/bin; on a Vax, /bin is a symbolic link to
//! /vice/unix/vax/bin. The extra level of indirection provided by symbolic
//! links is thus of great value in supporting a heterogeneous environment."
//!
//! [`Namespace::classify`] is the heart of this module: given any absolute
//! path, it walks the local file system, follows symbolic links, and
//! decides whether the path ultimately denotes a local file or a file in
//! the shared Vice name space (returning the rewritten Vice path).

use itc_unixfs::{join, normalize, FileSystem, FileType, FsError, Mode};

/// The mount point of the shared name space.
pub const VICE_MOUNT: &str = "/vice";

/// Hardware/OS flavor of a workstation; determines where the standard
/// symbolic links point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkstationType {
    /// A Sun workstation.
    Sun,
    /// A Vax workstation.
    Vax,
    /// A low-function machine reaching Vice via a surrogate (Section 3.3);
    /// it gets no local binaries at all.
    IbmPc,
}

impl WorkstationType {
    /// The architecture component used in `/vice/unix/<arch>/...` paths.
    pub fn arch(&self) -> &'static str {
        match self {
            WorkstationType::Sun => "sun",
            WorkstationType::Vax => "vax",
            WorkstationType::IbmPc => "ibmpc",
        }
    }
}

/// Which space a path landed in after resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Space {
    /// A local file; the normalized local path.
    Local(String),
    /// A shared file; the normalized Vice path (begins with `/vice`).
    Vice(String),
}

/// The local root file system plus the classification logic.
#[derive(Debug)]
pub struct Namespace {
    local: FileSystem,
    ws_type: WorkstationType,
}

const SYMLINK_LIMIT: u32 = 40;

impl Namespace {
    /// Builds the standard local name space for a workstation of the given
    /// type: `/tmp` (temporary files stay local — "placing such files in
    /// the shared name space serves no useful purpose"), `/vmunix` (boot
    /// image, class 1 of Section 3.1), and the `/bin`, `/lib` symbolic
    /// links into the architecture-specific Vice subtree.
    pub fn standard(ws_type: WorkstationType) -> Namespace {
        let mut local = FileSystem::new();
        local.mkdir("/tmp", Mode(0o777), 0, 0).expect("fresh fs");
        local
            .mkdir("/etc", Mode::DIR_DEFAULT, 0, 0)
            .expect("fresh fs");
        local.mkdir("/local", Mode(0o777), 0, 0).expect("fresh fs");
        local
            .create("/vmunix", Mode(0o755), 0, 0, b"boot image".to_vec())
            .expect("fresh fs");
        // A marker directory so readdir("/") shows the mount point.
        local
            .mkdir(VICE_MOUNT, Mode::DIR_DEFAULT, 0, 0)
            .expect("fresh fs");
        if ws_type != WorkstationType::IbmPc {
            let arch = ws_type.arch();
            local
                .symlink("/bin", &format!("/vice/unix/{arch}/bin"), 0, 0)
                .expect("fresh fs");
            local
                .symlink("/lib", &format!("/vice/unix/{arch}/lib"), 0, 0)
                .expect("fresh fs");
        }
        Namespace { local, ws_type }
    }

    /// The workstation type.
    pub fn ws_type(&self) -> WorkstationType {
        self.ws_type
    }

    /// Read access to the local file system.
    pub fn local(&self) -> &FileSystem {
        &self.local
    }

    /// Write access to the local file system.
    pub fn local_mut(&mut self) -> &mut FileSystem {
        &mut self.local
    }

    /// Classifies an absolute path into local or shared space, following
    /// symbolic links (including the final component when `follow_final`).
    ///
    /// The final component need not exist (creation targets classify by
    /// their parent); intermediate components must.
    pub fn classify(&self, path: &str, follow_final: bool) -> Result<Space, FsError> {
        let norm = normalize(path)?;
        self.classify_norm(&norm, follow_final, 0)
    }

    fn classify_norm(&self, norm: &str, follow_final: bool, depth: u32) -> Result<Space, FsError> {
        if depth > SYMLINK_LIMIT {
            return Err(FsError::SymlinkLoop(norm.to_string()));
        }
        if norm == VICE_MOUNT || norm.starts_with("/vice/") {
            return Ok(Space::Vice(norm.to_string()));
        }
        if norm == "/" {
            return Ok(Space::Local("/".to_string()));
        }

        // Walk intermediate components in the local file system.
        let comps: Vec<&str> = norm.split('/').filter(|c| !c.is_empty()).collect();
        let mut cur = String::from("");
        for (i, comp) in comps.iter().enumerate() {
            let is_last = i == comps.len() - 1;
            let candidate = format!("{cur}/{comp}");
            match self.local.lstat(&candidate) {
                Ok(attr) if attr.ftype == FileType::Symlink => {
                    if is_last && !follow_final {
                        return Ok(Space::Local(candidate));
                    }
                    let target = self.local.readlink(&candidate)?;
                    let base = if cur.is_empty() { "/" } else { &cur };
                    let mut joined = join(base, &target)?;
                    // Re-attach any remaining components.
                    for rest in &comps[i + 1..] {
                        joined = join(&joined, rest)?;
                    }
                    return self.classify_norm(&joined, follow_final, depth + 1);
                }
                Ok(_) => {
                    cur = candidate;
                }
                Err(FsError::NotFound(_)) if is_last => {
                    // Creation target: parent exists, child does not.
                    return Ok(Space::Local(candidate));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Space::Local(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vice_paths_classify_shared() {
        let ns = Namespace::standard(WorkstationType::Sun);
        assert_eq!(
            ns.classify("/vice/usr/satya/f", true).unwrap(),
            Space::Vice("/vice/usr/satya/f".to_string())
        );
        assert_eq!(
            ns.classify("/vice", true).unwrap(),
            Space::Vice("/vice".to_string())
        );
    }

    #[test]
    fn tmp_stays_local() {
        let ns = Namespace::standard(WorkstationType::Sun);
        assert_eq!(
            ns.classify("/tmp/cc.1234.o", true).unwrap(),
            Space::Local("/tmp/cc.1234.o".to_string())
        );
        assert_eq!(
            ns.classify("/vmunix", true).unwrap(),
            Space::Local("/vmunix".to_string())
        );
    }

    #[test]
    fn bin_redirects_by_workstation_type() {
        // The paper's heterogeneity mechanism: the same name /bin/cc means
        // different Vice files on different architectures.
        let sun = Namespace::standard(WorkstationType::Sun);
        assert_eq!(
            sun.classify("/bin/cc", true).unwrap(),
            Space::Vice("/vice/unix/sun/bin/cc".to_string())
        );
        let vax = Namespace::standard(WorkstationType::Vax);
        assert_eq!(
            vax.classify("/bin/cc", true).unwrap(),
            Space::Vice("/vice/unix/vax/bin/cc".to_string())
        );
    }

    #[test]
    fn lib_symlink_present() {
        let sun = Namespace::standard(WorkstationType::Sun);
        assert_eq!(
            sun.classify("/lib/libc.a", true).unwrap(),
            Space::Vice("/vice/unix/sun/lib/libc.a".to_string())
        );
    }

    #[test]
    fn final_symlink_respected_only_when_following() {
        let sun = Namespace::standard(WorkstationType::Sun);
        // lstat-style classification sees the link itself.
        assert_eq!(
            sun.classify("/bin", false).unwrap(),
            Space::Local("/bin".to_string())
        );
        assert_eq!(
            sun.classify("/bin", true).unwrap(),
            Space::Vice("/vice/unix/sun/bin".to_string())
        );
    }

    #[test]
    fn user_symlinks_into_vice() {
        let mut ns = Namespace::standard(WorkstationType::Sun);
        ns.local_mut()
            .symlink("/local/mydocs", "/vice/usr/satya/doc", 0, 1)
            .unwrap();
        assert_eq!(
            ns.classify("/local/mydocs/paper.tex", true).unwrap(),
            Space::Vice("/vice/usr/satya/doc/paper.tex".to_string())
        );
    }

    #[test]
    fn local_symlink_chains_resolve() {
        let mut ns = Namespace::standard(WorkstationType::Sun);
        ns.local_mut()
            .symlink("/local/a", "/local/b", 0, 1)
            .unwrap();
        ns.local_mut().symlink("/local/b", "/tmp", 0, 1).unwrap();
        assert_eq!(
            ns.classify("/local/a/x", true).unwrap(),
            Space::Local("/tmp/x".to_string())
        );
    }

    #[test]
    fn symlink_loop_detected() {
        let mut ns = Namespace::standard(WorkstationType::Sun);
        ns.local_mut()
            .symlink("/local/x", "/local/y", 0, 1)
            .unwrap();
        ns.local_mut()
            .symlink("/local/y", "/local/x", 0, 1)
            .unwrap();
        assert!(matches!(
            ns.classify("/local/x/f", true),
            Err(FsError::SymlinkLoop(_))
        ));
    }

    #[test]
    fn creation_target_classifies_by_parent() {
        let ns = Namespace::standard(WorkstationType::Sun);
        assert_eq!(
            ns.classify("/tmp/newfile", true).unwrap(),
            Space::Local("/tmp/newfile".to_string())
        );
        // Missing intermediate directory is still an error.
        assert!(matches!(
            ns.classify("/tmp/ghostdir/newfile", true),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn pc_has_no_binaries() {
        let pc = Namespace::standard(WorkstationType::IbmPc);
        assert!(matches!(
            pc.classify("/bin/cc", true),
            Err(FsError::NotFound(_))
        ));
        assert_eq!(pc.ws_type().arch(), "ibmpc");
    }
}
