//! Venus: the workstation cache manager.
//!
//! Section 3.5.1: "Virtue is implemented in two parts: a set of
//! modifications to the workstation operating system to intercept file
//! requests, and a user-level process, called Venus. Venus handles
//! management of the cache, communication with Vice and the emulation of
//! native file system primitives for Vice files."
//!
//! This module is the heart of the client half of the design:
//!
//! * **Whole-file caching** — `open` fetches the entire file into the cache
//!   on a miss; `read`/`write` touch only the cached copy; `close`
//!   transmits the whole file back to the custodian if it was modified
//!   (Section 3.2). "Other than performance, there is no difference
//!   between accessing a local file and a file in the shared name space."
//! * **Validation** — check-on-open (prototype) or callback-based (revised
//!   design): a cached entry is used without any server traffic while its
//!   callback promise stands.
//! * **Custodian hints** — "Clients use cached location information as
//!   hints" (Section 6.1); a stale hint is corrected by the
//!   `NotCustodian` reply and retried.
//! * **Client-side pathname traversal** (revised design) — Venus fetches
//!   and caches intermediate directories and walks them itself, relieving
//!   the server CPU (Section 5.3). Cached directories are treated as
//!   hints and are not revalidated on every use; callback breaks (or
//!   server errors) refresh them.
//!
//! Venus never talks to sockets: it issues calls through a
//! [`ViceTransport`], which the system layer implements over the simulated
//! network with real encrypted bindings.

pub mod cache;
pub mod namespace;

pub use cache::{Cache, CacheEntry, CacheStats};
pub use namespace::{Namespace, Space, WorkstationType, VICE_MOUNT};

use crate::config::{CachePolicy, WritePolicy};
use crate::location::subtree_covers;
use crate::protect::AccessList;
use crate::proto::{EntryKind, Payload, ServerId, VStatus, ViceError, ViceReply, ViceRequest};
use itc_cryptbox::Key;
use itc_rpc::NodeId;
use itc_sim::{Costs, SimRng, SimTime, TraversalMode, ValidationMode};
use itc_unixfs::{dirname_basename, FsError, Mode};
use std::collections::{BTreeMap, HashMap};

/// Errors surfaced to applications by Venus.
#[derive(Debug, Clone, PartialEq)]
pub enum VenusError {
    /// No user is logged in at this workstation.
    NotLoggedIn,
    /// Vice rejected the operation.
    Vice(ViceError),
    /// A local file system error.
    Local(FsError),
    /// The transport failed (authentication, unknown server).
    Transport(String),
    /// Unknown file handle.
    BadHandle(u64),
    /// A reply had an unexpected shape for the request sent.
    ProtocolMismatch(&'static str),
    /// Custodian resolution failed repeatedly.
    NoCustodian(String),
    /// A mutation could not be applied: the custodian is down or kept
    /// timing out, and no read-only replica may apply it. The workstation
    /// is in degraded mode for this subtree — reads from cache still work,
    /// but updates must wait for the custodian (Section 2.2 accepts this:
    /// replication covers read-only subtrees only).
    Degraded(ViceError),
}

impl std::fmt::Display for VenusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VenusError::NotLoggedIn => write!(f, "no user logged in"),
            VenusError::Vice(e) => write!(f, "vice: {e}"),
            VenusError::Local(e) => write!(f, "local: {e}"),
            VenusError::Transport(m) => write!(f, "transport: {m}"),
            VenusError::BadHandle(h) => write!(f, "bad file handle {h}"),
            VenusError::ProtocolMismatch(m) => write!(f, "protocol mismatch: {m}"),
            VenusError::NoCustodian(p) => write!(f, "no custodian found for {p}"),
            VenusError::Degraded(e) => write!(f, "degraded mode, mutation not applied: {e}"),
        }
    }
}

impl std::error::Error for VenusError {}

impl From<ViceError> for VenusError {
    fn from(e: ViceError) -> Self {
        VenusError::Vice(e)
    }
}

impl From<FsError> for VenusError {
    fn from(e: FsError) -> Self {
        VenusError::Local(e)
    }
}

/// The interface Venus uses to reach Vice. Implemented by the system layer
/// (and by lightweight fakes in unit tests).
pub trait ViceTransport {
    /// Issues one authenticated call at virtual time `at`; returns the
    /// reply and the completion time.
    fn call(
        &mut self,
        ws: NodeId,
        user: &str,
        key: Key,
        server: ServerId,
        req: &ViceRequest,
        at: SimTime,
    ) -> Result<(ViceReply, SimTime), String>;

    /// Picks the topologically nearest of `candidates` to `ws` (used to
    /// prefer a same-cluster read-only replica).
    fn nearest(&self, ws: NodeId, candidates: &[ServerId]) -> ServerId;

    /// The server in this workstation's own cluster — the default target
    /// for location queries.
    fn home_server(&self, ws: NodeId) -> ServerId;

    /// The server's current incarnation epoch (crash count). Venus compares
    /// this against the epoch it last observed to detect that a server
    /// crashed — losing its callback promises — while the workstation
    /// wasn't looking. Transports without crash modeling use the default.
    fn epoch_of(&self, _server: ServerId) -> u64 {
        0
    }
}

/// Per-Venus operation counters (the cache's own hit/miss stats live in
/// [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VenusStats {
    /// File opens through the Vice path.
    pub vice_opens: u64,
    /// Whole-file fetches issued.
    pub fetches: u64,
    /// Whole-file stores issued.
    pub stores: u64,
    /// Cache validation calls issued.
    pub validations: u64,
    /// Bytes fetched from Vice.
    pub bytes_fetched: u64,
    /// Bytes stored to Vice.
    pub bytes_stored: u64,
    /// Reads served from an open handle (never any server traffic).
    pub local_reads: u64,
}

/// An authenticated session at a workstation.
#[derive(Debug, Clone)]
struct Session {
    user: String,
    key: Key,
}

/// An open file description. The contents share their allocation with the
/// cache entry they were opened from until the first write.
#[derive(Debug)]
struct OpenFile {
    space: Space,
    data: Payload,
    dirty: bool,
    writable: bool,
}

/// The Venus cache manager for one workstation.
#[derive(Debug)]
pub struct Venus {
    node: NodeId,
    namespace: Namespace,
    cache: Cache,
    /// Custodian hints by subtree root. A `BTreeMap`, not a `HashMap`:
    /// `hint_for` scans it while routing calls (an event-emitting path),
    /// so iteration order must be seed-stable.
    hints: BTreeMap<String, (ServerId, Vec<ServerId>)>,
    session: Option<Session>,
    open_files: HashMap<u64, OpenFile>,
    next_handle: u64,
    now: SimTime,
    validation: ValidationMode,
    traversal: TraversalMode,
    costs: Costs,
    stats: VenusStats,
    write_policy: WritePolicy,
    /// Dirty Vice paths awaiting a deferred flush: path -> flush deadline.
    /// A `BTreeMap` so due entries flush in path order — each flush issues
    /// RPCs, and their order must be a function of the seed alone.
    dirty: BTreeMap<String, SimTime>,
    /// Last observed incarnation epoch per server; a bump means the server
    /// crashed (losing callback promises) since we last talked to it.
    server_epochs: HashMap<ServerId, u64>,
    /// Consecutive failed exchanges per server (unreachable, timed out, or
    /// volume offline); reset by any genuine reply. Feeds
    /// [`Venus::reconnect_backoff`].
    reconnect_failures: HashMap<ServerId, u32>,
    /// Private jitter stream for reconnect backoff. Deliberately NOT forked
    /// from any shared stream: it is seeded arithmetically (see the
    /// topology builder), so merely having it changes no existing run.
    reconnect_rng: SimRng,
}

const CUSTODIAN_RETRIES: u32 = 3;

impl Venus {
    /// Creates a Venus instance for a workstation.
    pub fn new(
        node: NodeId,
        ws_type: WorkstationType,
        policy: CachePolicy,
        validation: ValidationMode,
        traversal: TraversalMode,
        costs: Costs,
    ) -> Venus {
        Venus::with_write_policy(
            node,
            ws_type,
            policy,
            validation,
            traversal,
            costs,
            WritePolicy::StoreOnClose,
        )
    }

    /// Creates a Venus with an explicit write-back policy (the E16
    /// ablation; [`Venus::new`] defaults to store-on-close as the paper
    /// chose).
    #[allow(clippy::too_many_arguments)]
    pub fn with_write_policy(
        node: NodeId,
        ws_type: WorkstationType,
        policy: CachePolicy,
        validation: ValidationMode,
        traversal: TraversalMode,
        costs: Costs,
        write_policy: WritePolicy,
    ) -> Venus {
        Venus {
            node,
            namespace: Namespace::standard(ws_type),
            cache: Cache::new(policy),
            hints: BTreeMap::new(),
            session: None,
            open_files: HashMap::new(),
            next_handle: 1,
            now: SimTime::ZERO,
            validation,
            traversal,
            costs,
            stats: VenusStats::default(),
            write_policy,
            dirty: BTreeMap::new(),
            server_epochs: HashMap::new(),
            reconnect_failures: HashMap::new(),
            reconnect_rng: SimRng::seeded(0),
        }
    }

    /// Seeds the private reconnect-jitter stream. Called once at topology
    /// build with a seed derived arithmetically from the system seed and
    /// this workstation's node id, so distinct workstations desynchronize
    /// their retry storms differently but reproducibly.
    pub fn seed_reconnect_jitter(&mut self, seed: u64) {
        self.reconnect_rng = SimRng::seeded(seed);
    }

    /// Consecutive failed exchanges with `server` (0 = healthy).
    pub fn reconnect_failures(&self, server: ServerId) -> u32 {
        self.reconnect_failures.get(&server).copied().unwrap_or(0)
    }

    /// How long this workstation should wait before its next probe of a
    /// server that has been failing: exponential in the consecutive-failure
    /// count (500 ms doubling up to 32 s) with ±25% seeded jitter, so a
    /// cluster of clients that all lost the same server spread their
    /// revalidation probes instead of re-arriving as a thundering herd.
    /// Returns zero while the server is healthy. Draws only from the
    /// private jitter stream — consulting it never perturbs workload or
    /// transport randomness.
    pub fn reconnect_backoff(&mut self, server: ServerId) -> SimTime {
        let failures = self.reconnect_failures(server);
        if failures == 0 {
            return SimTime::ZERO;
        }
        let base_us = 500_000u64 << (failures.min(7) - 1) as u64;
        // ±25% jitter: uniform in [0.75, 1.25) of the base.
        let jittered = (base_us as f64 * (0.75 + 0.5 * self.reconnect_rng.unit())) as u64;
        SimTime::from_micros(jittered)
    }

    /// The workstation's network node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current workstation-local virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances local time (think time between operations). Never moves
    /// backward.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// The cache (for metrics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Operation counters.
    pub fn stats(&self) -> VenusStats {
        self.stats
    }

    /// The local name space.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Mutable local name space (for installing user symlinks).
    pub fn namespace_mut(&mut self) -> &mut Namespace {
        &mut self.namespace
    }

    /// Starts a session for `user` whose password-derived key is `key`.
    /// (Authentication itself — the handshake — is performed by the system
    /// layer when the first binding to each server is established; a wrong
    /// password surfaces there.)
    pub fn set_session(&mut self, user: &str, key: Key) {
        self.session = Some(Session {
            user: user.to_string(),
            key,
        });
    }

    /// Ends the session. The cache is retained: it belongs to the
    /// workstation, not the user, and a returning user benefits from it.
    pub fn clear_session(&mut self) {
        self.session = None;
    }

    /// The logged-in user, if any.
    pub fn current_user(&self) -> Option<&str> {
        self.session.as_deref_user()
    }

    /// Delivers a callback break from a server: the cached copy (file or
    /// directory) at `path` is no longer valid.
    pub fn on_callback_break(&mut self, path: &str) {
        // A locally-dirty file is about to be overwritten by our own flush
        // anyway (last-writer-wins under the delayed policy); invalidating
        // it would silently discard the user's unflushed edit.
        if !self.dirty.contains_key(path) {
            self.cache.invalidate(path);
        }
    }

    fn session(&self) -> Result<Session, VenusError> {
        self.session.clone().ok_or(VenusError::NotLoggedIn)
    }

    /// Called after a genuine exchange with `server`: if its incarnation
    /// epoch advanced since we last saw it, the server crashed and its
    /// callback promises for this workstation are gone. Every cached copy
    /// that relied on a promise becomes suspect and must be revalidated
    /// (re-fetched) before its next use. Read-only copies "can never be
    /// invalid" and locally-dirty files are newer than anything the server
    /// holds, so both are kept.
    ///
    /// Discovery is contact-driven: while a server is down nothing can
    /// mutate its files, so cached copies remain safe to serve; the
    /// staleness window opens only once the restarted server starts
    /// applying other workstations' updates, and closes at this
    /// workstation's first exchange with it.
    fn note_epoch(&mut self, t: &dyn ViceTransport, server: ServerId) {
        let cur = t.epoch_of(server);
        if let Some(prev) = self.server_epochs.insert(server, cur) {
            if cur > prev {
                let dirty = std::mem::take(&mut self.dirty);
                self.cache.invalidate_suspect(|p| dirty.contains_key(p));
                self.dirty = dirty;
            }
        }
    }

    fn charge_intercept(&mut self) {
        self.now += self.costs.ws_cpu_intercept;
    }

    fn charge_local_disk(&mut self, bytes: u64) {
        self.now += self.costs.ws_disk_transfer(bytes);
    }

    // ------------------------------------------------------------------
    // Custodian resolution
    // ------------------------------------------------------------------

    fn hint_for(&self, vice_path: &str) -> Option<(ServerId, Vec<ServerId>)> {
        let mut best: Option<(&String, &(ServerId, Vec<ServerId>))> = None;
        for (root, entry) in &self.hints {
            if subtree_covers(root, vice_path) && best.is_none_or(|(b, _)| root.len() > b.len()) {
                best = Some((root, entry));
            }
        }
        best.map(|(_, e)| e.clone())
    }

    fn drop_hint_for(&mut self, vice_path: &str) {
        self.hints
            .retain(|root, _| !subtree_covers(root, vice_path));
    }

    /// Learns the custodian of `vice_path`, consulting the hint cache
    /// first and the home server's location database otherwise.
    fn resolve_custodian(
        &mut self,
        t: &mut dyn ViceTransport,
        vice_path: &str,
    ) -> Result<(ServerId, Vec<ServerId>), VenusError> {
        if let Some(hit) = self.hint_for(vice_path) {
            return Ok(hit);
        }
        let s = self.session()?;
        let home = t.home_server(self.node);
        let req = ViceRequest::GetCustodian {
            path: vice_path.to_string(),
        };
        let (reply, done) = t
            .call(self.node, &s.user, s.key, home, &req, self.now)
            .map_err(VenusError::Transport)?;
        self.now = done;
        match reply {
            ViceReply::Custodian {
                subtree,
                custodian,
                replicas,
            } => {
                self.note_epoch(&*t, home);
                self.hints.insert(subtree, (custodian, replicas.clone()));
                Ok((custodian, replicas))
            }
            ViceReply::Error(e) => Err(VenusError::Vice(e)),
            _ => Err(VenusError::ProtocolMismatch("GetCustodian")),
        }
    }

    /// Issues `req` to the appropriate server, following `NotCustodian`
    /// hints. Read-only-eligible calls (`prefer_replica`) go to the
    /// nearest replica; mutations go to the custodian.
    fn call_vice(
        &mut self,
        t: &mut dyn ViceTransport,
        req: &ViceRequest,
        prefer_replica: bool,
    ) -> Result<ViceReply, VenusError> {
        let s = self.session()?;
        let path = req.path().to_string();
        for _ in 0..CUSTODIAN_RETRIES {
            let (custodian, replicas) = self.resolve_custodian(t, &path)?;
            // Candidate order: for read-eligible calls, nearest first and
            // fail over down the list; mutations go to the custodian only
            // (read-only replicas cannot apply them anyway).
            let mut candidates = if prefer_replica && !replicas.is_empty() {
                let mut all = vec![custodian];
                all.extend(replicas.iter().copied());
                let first = t.nearest(self.node, &all);
                let mut ordered = vec![first];
                ordered.extend(all.into_iter().filter(|c| *c != first));
                ordered
            } else {
                vec![custodian]
            };
            candidates.dedup();

            let mut last_failure: Option<ViceError> = None;
            let mut reply = None;
            for target in candidates {
                let (r, done) = t
                    .call(self.node, &s.user, s.key, target, req, self.now)
                    .map_err(VenusError::Transport)?;
                self.now = done;
                match r {
                    // This machine is down: try the next replica — "single
                    // point ... machine failures should not affect the
                    // entire user community" (Section 2.2).
                    ViceReply::Error(ViceError::Unreachable(srv)) => {
                        *self.reconnect_failures.entry(target).or_insert(0) += 1;
                        last_failure = Some(ViceError::Unreachable(srv));
                    }
                    // The machine is thought to be up but every attempt at
                    // the call timed out (lost traffic): a replica may
                    // still answer a read.
                    ViceReply::Error(ViceError::TimedOut(srv)) => {
                        *self.reconnect_failures.entry(target).or_insert(0) += 1;
                        last_failure = Some(ViceError::TimedOut(srv));
                    }
                    // The server is up but the volume is being salvaged
                    // (or was taken offline): a read-only replica elsewhere
                    // may still cover the path, so keep trying candidates.
                    ViceReply::Error(ViceError::VolumeOffline(p)) => {
                        self.note_epoch(&*t, target);
                        *self.reconnect_failures.entry(target).or_insert(0) += 1;
                        last_failure = Some(ViceError::VolumeOffline(p));
                    }
                    other => {
                        // A genuine exchange with this server: notice if it
                        // restarted behind our back.
                        self.note_epoch(&*t, target);
                        self.reconnect_failures.remove(&target);
                        reply = Some(other);
                        break;
                    }
                }
            }
            match reply {
                Some(ViceReply::Error(ViceError::NotCustodian(hint))) => {
                    // Stale hint: drop it and retry. If the server offered
                    // a hint, seed it for the exact path's parent subtree.
                    self.drop_hint_for(&path);
                    if let Some(h) = hint {
                        self.hints.insert(path.clone(), (h, Vec::new()));
                    }
                }
                Some(other) => return Ok(other),
                None => {
                    let cause = last_failure.unwrap_or(ViceError::Unreachable(custodian.0));
                    // Reads surface the failure as-is; mutations get the
                    // distinguishable degraded-mode error — the caller's
                    // data was NOT applied anywhere.
                    return Err(if req.is_mutation() {
                        VenusError::Degraded(cause)
                    } else {
                        VenusError::Vice(cause)
                    });
                }
            }
        }
        Err(VenusError::NoCustodian(path))
    }

    // ------------------------------------------------------------------
    // Cache fill
    // ------------------------------------------------------------------

    /// Ensures the directories on the way to `vice_path` are cached
    /// (client-side traversal mode): "Venus will translate a Vice pathname
    /// into a file identifier by caching the intermediate directories from
    /// Vice and traversing them" (Section 5.3).
    fn walk_client_side(
        &mut self,
        t: &mut dyn ViceTransport,
        vice_path: &str,
    ) -> Result<(), VenusError> {
        if self.traversal != TraversalMode::ClientSide {
            return Ok(());
        }
        // Ancestors strictly between /vice and the final component.
        let comps: Vec<&str> = vice_path.split('/').filter(|c| !c.is_empty()).collect();
        let mut prefix = String::new();
        for comp in &comps[..comps.len().saturating_sub(1)] {
            prefix.push('/');
            prefix.push_str(comp);
            self.now += self.costs.ws_cpu_per_component;
            if prefix == VICE_MOUNT {
                continue;
            }
            let cached_valid = self
                .cache
                .peek(&prefix)
                .map(|e| e.kind == cache::EntryKind::Directory && (e.valid || e.status.read_only))
                .unwrap_or(false);
            if cached_valid {
                self.cache.get(&prefix);
                continue;
            }
            // Fetch the directory's listing blob and cache it.
            let req = ViceRequest::Fetch {
                path: prefix.clone(),
            };
            match self.call_vice(t, &req, true)? {
                ViceReply::Data { status, data } => {
                    self.stats.fetches += 1;
                    self.stats.bytes_fetched += data.len() as u64;
                    self.charge_local_disk(data.len() as u64);
                    self.cache
                        .insert(&prefix, data, status, cache::EntryKind::Directory);
                }
                ViceReply::Error(e) => return Err(VenusError::Vice(e)),
                ViceReply::Link(_) => {
                    // A symlink mid-path inside Vice; the server resolves
                    // these on the final operation, so just stop walking.
                    return Ok(());
                }
                _ => return Err(VenusError::ProtocolMismatch("Fetch dir")),
            }
        }
        Ok(())
    }

    /// Makes sure a current copy of `vice_path` is in the cache, fetching
    /// or validating as the mode requires. Returns the file contents,
    /// shared by refcount with the cache entry — a hit copies nothing.
    fn ensure_cached(
        &mut self,
        t: &mut dyn ViceTransport,
        vice_path: &str,
    ) -> Result<Payload, VenusError> {
        self.stats.vice_opens += 1;
        self.walk_client_side(t, vice_path)?;

        // A dirty (unflushed) copy is the newest version in existence:
        // serve it locally — the custodian may not even know the file yet.
        if self.dirty.contains_key(vice_path) {
            if let Some(e) = self.cache.get(vice_path) {
                let data = e.data.clone();
                self.cache.count_hit();
                self.charge_local_disk(data.len() as u64);
                return Ok(data);
            }
        }

        // Decide whether the cached copy may be used without a fetch.
        let cached = self.cache.peek(vice_path).map(|e| {
            (
                e.valid,
                e.status.read_only,
                e.status.fid,
                e.status.version,
                e.data.len() as u64,
            )
        });
        if let Some((valid, read_only, fid, version, size)) = cached {
            // Read-only subtree copies "can never be invalid".
            if read_only {
                self.cache.count_hit();
                self.charge_local_disk(size);
                return Ok(self.cache.get(vice_path).expect("peeked").data.clone());
            }
            match self.validation {
                ValidationMode::Callback if valid => {
                    // Promise stands: zero server traffic.
                    self.cache.count_hit();
                    self.charge_local_disk(size);
                    return Ok(self.cache.get(vice_path).expect("peeked").data.clone());
                }
                ValidationMode::Callback => {
                    // Broken promise: must refetch below.
                }
                ValidationMode::CheckOnOpen => {
                    // The prototype's dominant call: validate on every open.
                    let req = ViceRequest::Validate {
                        path: vice_path.to_string(),
                        fid,
                        version,
                    };
                    self.stats.validations += 1;
                    match self.call_vice(t, &req, true)? {
                        ViceReply::Validated { valid: true, .. } => {
                            self.cache.revalidate(vice_path, None);
                            self.cache.count_hit();
                            self.charge_local_disk(size);
                            return Ok(self.cache.get(vice_path).expect("peeked").data.clone());
                        }
                        ViceReply::Validated { valid: false, .. } => {
                            // Stale: fall through to fetch.
                        }
                        ViceReply::Error(ViceError::NoSuchFile(_)) => {
                            // Deleted behind our back.
                            self.cache.remove(vice_path);
                        }
                        ViceReply::Error(e) => return Err(VenusError::Vice(e)),
                        _ => return Err(VenusError::ProtocolMismatch("Validate")),
                    }
                }
            }
        }

        // Whole-file fetch.
        let req = ViceRequest::Fetch {
            path: vice_path.to_string(),
        };
        match self.call_vice(t, &req, true)? {
            ViceReply::Data { status, data } => {
                self.cache.count_miss();
                self.stats.fetches += 1;
                self.stats.bytes_fetched += data.len() as u64;
                // Writing the fetched file to the local cache disk, then
                // reading it back for the application (Section 3.5.1: the
                // cache is a directory in the local Unix file system, not
                // memory — a miss pays the local disk twice).
                self.charge_local_disk(data.len() as u64);
                self.charge_local_disk(data.len() as u64);
                let kind = if status.kind == EntryKind::Dir {
                    cache::EntryKind::Directory
                } else {
                    cache::EntryKind::File
                };
                // The cache entry and the returned handle share the fetched
                // allocation: the clone is a refcount bump.
                self.cache.insert(vice_path, data.clone(), status, kind);
                Ok(data)
            }
            ViceReply::Link(target) => {
                // A symlink inside Vice: follow it (target is a Vice path).
                self.ensure_cached(t, &target)
            }
            ViceReply::Error(e) => Err(VenusError::Vice(e)),
            _ => Err(VenusError::ProtocolMismatch("Fetch")),
        }
    }

    // ------------------------------------------------------------------
    // The workstation file interface (what intercepted syscalls invoke)
    // ------------------------------------------------------------------

    /// Opens a file for reading. Returns a handle.
    pub fn open_read(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<u64, VenusError> {
        self.charge_intercept();
        let space = self.namespace.classify(path, true)?;
        let (data, space) = match space {
            Space::Local(p) => {
                let data = Payload::from_vec(self.namespace.local().read(&p)?);
                self.charge_local_disk(data.len() as u64);
                (data, Space::Local(p))
            }
            Space::Vice(vp) => {
                let data = self.ensure_cached(t, &vp)?;
                (data, Space::Vice(vp))
            }
        };
        Ok(self.install_handle(space, data, false))
    }

    /// Opens (creating if necessary) a file for writing. The initial
    /// content is the current file content, or empty for a new file.
    pub fn open_write(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<u64, VenusError> {
        self.charge_intercept();
        let space = self.namespace.classify(path, true)?;
        let (data, space) = match space {
            Space::Local(p) => {
                let data = Payload::from_vec(self.namespace.local().read(&p).unwrap_or_default());
                (data, Space::Local(p))
            }
            Space::Vice(vp) => {
                let data = match self.ensure_cached(t, &vp) {
                    Ok(d) => d,
                    Err(VenusError::Vice(ViceError::NoSuchFile(_))) => Payload::empty(),
                    Err(e) => return Err(e),
                };
                (data, Space::Vice(vp))
            }
        };
        Ok(self.install_handle(space, data, true))
    }

    fn install_handle(&mut self, space: Space, data: Payload, writable: bool) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.open_files.insert(
            h,
            OpenFile {
                space,
                data,
                dirty: false,
                writable,
            },
        );
        h
    }

    /// Reads the whole contents through an open handle. "After the file is
    /// opened, individual read and write operations are directed to the
    /// cached copy. Virtue does not communicate with Vice in performing
    /// these operations" (Section 3.2).
    pub fn read(&mut self, handle: u64) -> Result<&[u8], VenusError> {
        let f = self
            .open_files
            .get(&handle)
            .ok_or(VenusError::BadHandle(handle))?;
        self.stats.local_reads += 1;
        Ok(f.data.as_slice())
    }

    /// Replaces the contents through an open (writable) handle. No server
    /// communication happens until close.
    pub fn write(&mut self, handle: u64, data: Vec<u8>) -> Result<(), VenusError> {
        let f = self
            .open_files
            .get_mut(&handle)
            .ok_or(VenusError::BadHandle(handle))?;
        if !f.writable {
            return Err(VenusError::Vice(ViceError::PermissionDenied(
                "handle opened read-only".to_string(),
            )));
        }
        f.data = Payload::from_vec(data);
        f.dirty = true;
        Ok(())
    }

    /// Appends bytes through an open handle.
    pub fn append(&mut self, handle: u64, bytes: &[u8]) -> Result<(), VenusError> {
        let f = self
            .open_files
            .get_mut(&handle)
            .ok_or(VenusError::BadHandle(handle))?;
        if !f.writable {
            return Err(VenusError::Vice(ViceError::PermissionDenied(
                "handle opened read-only".to_string(),
            )));
        }
        f.data.edit(|v| v.extend_from_slice(bytes));
        f.dirty = true;
        Ok(())
    }

    /// Closes a handle. "When the file is closed, the cache copy is
    /// transmitted to the appropriate custodian" — store-on-close
    /// (Section 3.2), adopted "to simplify recovery from workstation
    /// crashes" and to approximate timesharing visibility semantics.
    pub fn close(&mut self, t: &mut dyn ViceTransport, handle: u64) -> Result<(), VenusError> {
        self.charge_intercept();
        let f = self
            .open_files
            .remove(&handle)
            .ok_or(VenusError::BadHandle(handle))?;
        if !f.dirty {
            return Ok(());
        }
        match f.space {
            Space::Local(p) => {
                self.charge_local_disk(f.data.len() as u64);
                let now_us = self.now.as_micros();
                self.namespace
                    .local_mut()
                    .write(&p, 0, now_us, f.data.into_vec())?;
                Ok(())
            }
            Space::Vice(vp) => {
                if let WritePolicy::Delayed(delay) = self.write_policy {
                    // Deferred write-back: update the local cache copy and
                    // schedule the flush; repeated closes coalesce.
                    self.charge_local_disk(f.data.len() as u64);
                    let status = match self.cache.peek(&vp) {
                        Some(e) => {
                            let mut st = e.status.clone();
                            st.size = f.data.len() as u64;
                            st.mtime = self.now.as_micros();
                            st
                        }
                        None => provisional_status(&vp, f.data.len() as u64, self.now),
                    };
                    self.cache
                        .insert(&vp, f.data, status, cache::EntryKind::File);
                    let deadline = self.now + delay;
                    self.dirty.entry(vp).or_insert(deadline);
                    return Ok(());
                }
                self.store_back(t, &vp, f.data)
            }
        }
    }

    /// Transmits a whole file to its custodian and refreshes the cache
    /// entry with the authoritative status. The request, any retries, and
    /// the refreshed cache entry all share `data`'s allocation.
    fn store_back(
        &mut self,
        t: &mut dyn ViceTransport,
        vp: &str,
        data: Payload,
    ) -> Result<(), VenusError> {
        // Reading the cached copy off the local disk to transmit.
        self.charge_local_disk(data.len() as u64);
        let req = ViceRequest::Store {
            path: vp.to_string(),
            data: data.clone(),
        };
        match self.call_vice(t, &req, false)? {
            ViceReply::Status(status) => {
                self.stats.stores += 1;
                self.stats.bytes_stored += data.len() as u64;
                self.cache.update(vp, data, status);
                Ok(())
            }
            ViceReply::Error(e) => Err(VenusError::Vice(e)),
            _ => Err(VenusError::ProtocolMismatch("Store")),
        }
    }

    /// Number of dirty files awaiting a deferred flush.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Flushes deferred writes whose deadline has passed (no-op under
    /// store-on-close). Invoked before every operation by the system
    /// layer, and explicitly by `flush_all`.
    pub fn flush_due(&mut self, t: &mut dyn ViceTransport) -> Result<usize, VenusError> {
        let now = self.now;
        self.flush_matching(t, |deadline| deadline <= now)
    }

    /// Flushes every deferred write immediately (logout, shutdown).
    pub fn flush_all(&mut self, t: &mut dyn ViceTransport) -> Result<usize, VenusError> {
        self.flush_matching(t, |_| true)
    }

    fn flush_matching(
        &mut self,
        t: &mut dyn ViceTransport,
        pred: impl Fn(SimTime) -> bool,
    ) -> Result<usize, VenusError> {
        let due: Vec<String> = self
            .dirty
            .iter()
            .filter(|(_, &d)| pred(d))
            .map(|(p, _)| p.clone())
            .collect();
        let mut flushed = 0;
        for p in due {
            let Some(entry) = self.cache.peek(&p) else {
                self.dirty.remove(&p);
                continue;
            };
            let data = entry.data.clone();
            self.store_back(t, &p, data)?;
            self.dirty.remove(&p);
            flushed += 1;
        }
        Ok(flushed)
    }

    /// Simulates a workstation crash: every unflushed deferred write is
    /// lost, and the cache is wiped (the paper's rationale for
    /// store-on-close — "to simplify recovery from workstation crashes").
    /// Returns the number of updates lost.
    pub fn crash(&mut self) -> usize {
        let lost = self.dirty.len();
        self.dirty.clear();
        self.cache.clear();
        self.open_files.clear();
        lost
    }

    /// `stat(2)`: local files answer locally; Vice files answer from a
    /// valid cached status (callback mode) or with a GetStatus call.
    pub fn stat(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<VStatus, VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(p) => {
                let a = self.namespace.local().stat(&p)?;
                Ok(local_status(&p, &a))
            }
            Space::Vice(vp) => {
                // A dirty copy's status is the newest in existence.
                if self.dirty.contains_key(&vp) {
                    if let Some(e) = self.cache.peek(&vp) {
                        return Ok(e.status.clone());
                    }
                }
                if self.validation == ValidationMode::Callback {
                    if let Some(e) = self.cache.peek(&vp) {
                        if e.valid || e.status.read_only {
                            return Ok(e.status.clone());
                        }
                    }
                }
                let req = ViceRequest::GetStatus { path: vp };
                match self.call_vice(t, &req, true)? {
                    ViceReply::Status(s) => Ok(s),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("GetStatus")),
                }
            }
        }
    }

    /// Lists a directory.
    pub fn readdir(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
    ) -> Result<Vec<(String, EntryKind)>, VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(p) => {
                let entries = self.namespace.local().readdir(&p)?;
                let local = self.namespace.local();
                Ok(entries
                    .into_iter()
                    .map(|(name, ino)| {
                        let kind = match local.attr_of(ino).expect("entry").ftype {
                            itc_unixfs::FileType::Regular => EntryKind::File,
                            itc_unixfs::FileType::Directory => EntryKind::Dir,
                            itc_unixfs::FileType::Symlink => EntryKind::Symlink,
                        };
                        (name, kind)
                    })
                    .collect())
            }
            Space::Vice(vp) => {
                let req = ViceRequest::ListDir { path: vp };
                match self.call_vice(t, &req, true)? {
                    ViceReply::Listing(l) => Ok(l),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("ListDir")),
                }
            }
        }
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(p) => {
                let now_us = self.now.as_micros();
                self.namespace
                    .local_mut()
                    .mkdir(&p, Mode::DIR_DEFAULT, 0, now_us)?;
                Ok(())
            }
            Space::Vice(vp) => {
                let req = ViceRequest::MakeDir { path: vp.clone() };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Status(_) | ViceReply::Ok => {
                        // Our cached copy of the parent listing is stale.
                        if let Ok((parent, _)) = dirname_basename(&vp) {
                            self.cache.invalidate(&parent);
                        }
                        Ok(())
                    }
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("MakeDir")),
                }
            }
        }
    }

    /// Removes a file or symlink.
    pub fn unlink(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, false)? {
            Space::Local(p) => {
                let now_us = self.now.as_micros();
                self.namespace.local_mut().unlink(&p, now_us)?;
                Ok(())
            }
            Space::Vice(vp) => {
                let req = ViceRequest::Remove { path: vp.clone() };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => {
                        self.cache.remove(&vp);
                        if let Ok((parent, _)) = dirname_basename(&vp) {
                            self.cache.invalidate(&parent);
                        }
                        Ok(())
                    }
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("Remove")),
                }
            }
        }
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, false)? {
            Space::Local(p) => {
                let now_us = self.now.as_micros();
                self.namespace.local_mut().rmdir(&p, now_us)?;
                Ok(())
            }
            Space::Vice(vp) => {
                let req = ViceRequest::RemoveDir { path: vp.clone() };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => {
                        self.cache.remove(&vp);
                        Ok(())
                    }
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("RemoveDir")),
                }
            }
        }
    }

    /// Renames within one space. (Cross-space renames are a copy in Unix
    /// too — `mv` falls back to copy+unlink — and are not emulated here.)
    pub fn rename(
        &mut self,
        t: &mut dyn ViceTransport,
        from: &str,
        to: &str,
    ) -> Result<(), VenusError> {
        self.charge_intercept();
        let f = self.namespace.classify(from, false)?;
        let d = self.namespace.classify(to, false)?;
        match (f, d) {
            (Space::Local(a), Space::Local(b)) => {
                let now_us = self.now.as_micros();
                self.namespace.local_mut().rename(&a, &b, now_us)?;
                Ok(())
            }
            (Space::Vice(a), Space::Vice(b)) => {
                let req = ViceRequest::Rename {
                    from: a.clone(),
                    to: b.clone(),
                };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => {
                        self.cache.remove(&a);
                        self.cache.remove(&b);
                        Ok(())
                    }
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("Rename")),
                }
            }
            _ => Err(VenusError::Vice(ViceError::BadRequest(
                "rename across local/shared boundary".to_string(),
            ))),
        }
    }

    /// Creates a symbolic link (in either space; Vice symlinks are a
    /// revised-design feature, Section 5.3).
    pub fn symlink(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
        target: &str,
    ) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, false)? {
            Space::Local(p) => {
                let now_us = self.now.as_micros();
                self.namespace.local_mut().symlink(&p, target, 0, now_us)?;
                Ok(())
            }
            Space::Vice(vp) => {
                let req = ViceRequest::MakeSymlink {
                    path: vp,
                    target: target.to_string(),
                };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => Ok(()),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("MakeSymlink")),
                }
            }
        }
    }

    /// Reads a directory's access list.
    pub fn get_acl(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
    ) -> Result<AccessList, VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(_) => Err(VenusError::Vice(ViceError::BadRequest(
                "local files have no access lists".to_string(),
            ))),
            Space::Vice(vp) => {
                let req = ViceRequest::GetAcl { path: vp };
                match self.call_vice(t, &req, true)? {
                    ViceReply::Acl(a) => Ok(a),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("GetAcl")),
                }
            }
        }
    }

    /// Replaces a directory's access list.
    pub fn set_acl(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
        acl: AccessList,
    ) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(_) => Err(VenusError::Vice(ViceError::BadRequest(
                "local files have no access lists".to_string(),
            ))),
            Space::Vice(vp) => {
                let req = ViceRequest::SetAcl { path: vp, acl };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => Ok(()),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("SetAcl")),
                }
            }
        }
    }

    /// Acquires an advisory lock.
    pub fn lock(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
        exclusive: bool,
    ) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(_) => Ok(()), // local files need no distributed locks
            Space::Vice(vp) => {
                let req = ViceRequest::SetLock {
                    path: vp,
                    exclusive,
                };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => Ok(()),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("SetLock")),
                }
            }
        }
    }

    /// Releases an advisory lock.
    pub fn unlock(&mut self, t: &mut dyn ViceTransport, path: &str) -> Result<(), VenusError> {
        self.charge_intercept();
        match self.namespace.classify(path, true)? {
            Space::Local(_) => Ok(()),
            Space::Vice(vp) => {
                let req = ViceRequest::ReleaseLock { path: vp };
                match self.call_vice(t, &req, false)? {
                    ViceReply::Ok => Ok(()),
                    ViceReply::Error(e) => Err(VenusError::Vice(e)),
                    _ => Err(VenusError::ProtocolMismatch("ReleaseLock")),
                }
            }
        }
    }

    /// Convenience: open-read-close in one call.
    pub fn fetch_file(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
    ) -> Result<Vec<u8>, VenusError> {
        let h = self.open_read(t, path)?;
        let data = self.read(h)?.to_vec();
        self.close(t, h)?;
        Ok(data)
    }

    /// Convenience: open-write-close in one call.
    pub fn store_file(
        &mut self,
        t: &mut dyn ViceTransport,
        path: &str,
        data: Vec<u8>,
    ) -> Result<(), VenusError> {
        let h = self.open_write(t, path)?;
        self.write(h, data)?;
        self.close(t, h)
    }
}

/// Adapter so `current_user` can borrow out of the Option<Session>.
trait SessionExt {
    fn as_deref_user(&self) -> Option<&str>;
}

impl SessionExt for Option<Session> {
    fn as_deref_user(&self) -> Option<&str> {
        self.as_ref().map(|s| s.user.as_str())
    }
}

/// A placeholder status for a file created locally under the delayed
/// write policy, before the custodian has ever seen it.
fn provisional_status(path: &str, size: u64, now: SimTime) -> VStatus {
    VStatus {
        path: path.to_string(),
        fid: 0, // unknown until the first flush
        kind: EntryKind::File,
        size,
        version: 0,
        mtime: now.as_micros(),
        mode: 0o644,
        owner: 0,
        read_only: false,
    }
}

fn local_status(path: &str, a: &itc_unixfs::InodeAttr) -> VStatus {
    VStatus {
        path: path.to_string(),
        fid: a.ino.0,
        kind: match a.ftype {
            itc_unixfs::FileType::Regular => EntryKind::File,
            itc_unixfs::FileType::Directory => EntryKind::Dir,
            itc_unixfs::FileType::Symlink => EntryKind::Symlink,
        },
        size: a.size,
        version: a.version,
        mtime: a.mtime,
        mode: a.mode.0,
        owner: a.uid,
        read_only: false,
    }
}
