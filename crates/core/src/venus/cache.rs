//! The whole-file cache.
//!
//! "Part of the disk on each workstation is used to store local files,
//! while the rest is used as a cache of files in Vice. ... Virtue caches
//! entire files along with their status and custodianship information"
//! (Section 3.2). Entries hold complete file contents (or a directory's
//! serialized listing, used for client-side pathname traversal in the
//! revised design) plus the status block validation compares.
//!
//! Two eviction policies, matching Section 3.5.1 vs 5.3:
//! count-limited LRU (the prototype — "Venus limits the total number of
//! files in the cache rather than the total size") and space-limited LRU
//! (the revised implementation).

use crate::config::CachePolicy;
use crate::proto::VStatus;
use std::collections::HashMap;

/// What a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A whole file.
    File,
    /// A directory's serialized listing (client-side traversal).
    Directory,
}

/// One cached object.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Entire contents (file bytes or listing blob).
    pub data: Vec<u8>,
    /// Status as of the fetch (version is what validation compares).
    pub status: VStatus,
    /// Entry kind.
    pub kind: EntryKind,
    /// Callback-mode validity: true while the server's promise stands.
    /// Check-on-open mode ignores this and always revalidates.
    pub valid: bool,
    /// LRU tick of last use.
    last_used: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Opens satisfied without fetching (file present and current).
    pub hits: u64,
    /// Opens that required a whole-file fetch.
    pub misses: u64,
    /// Entries evicted by the policy.
    pub evictions: u64,
    /// Entries invalidated by callback breaks.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit ratio over file opens; 0 when no opens yet.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The Venus file cache.
#[derive(Debug)]
pub struct Cache {
    entries: HashMap<String, CacheEntry>,
    policy: CachePolicy,
    tick: u64,
    bytes: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache under the given policy.
    pub fn new(policy: CachePolicy) -> Cache {
        Cache {
            entries: HashMap::new(),
            policy,
            tick: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Counts a hit (caller decides, since validity rules differ by mode).
    pub fn count_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Counts a miss.
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Looks up an entry, refreshing its LRU position.
    pub fn get(&mut self, path: &str) -> Option<&CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(path) {
            Some(e) => {
                e.last_used = tick;
                Some(&*e)
            }
            None => None,
        }
    }

    /// Looks up without touching LRU state (for inspection in tests and
    /// metrics).
    pub fn peek(&self, path: &str) -> Option<&CacheEntry> {
        self.entries.get(path)
    }

    /// Inserts or replaces an entry, then evicts per policy. Returns the
    /// paths evicted.
    pub fn insert(
        &mut self,
        path: &str,
        data: Vec<u8>,
        status: VStatus,
        kind: EntryKind,
    ) -> Vec<String> {
        self.tick += 1;
        if let Some(old) = self.entries.remove(path) {
            self.bytes -= old.data.len() as u64;
        }
        self.bytes += data.len() as u64;
        self.entries.insert(
            path.to_string(),
            CacheEntry {
                data,
                status,
                kind,
                valid: true,
                last_used: self.tick,
            },
        );
        self.evict(path)
    }

    /// Marks an entry invalid (callback break). Returns true if present.
    pub fn invalidate(&mut self, path: &str) -> bool {
        match self.entries.get_mut(path) {
            Some(e) => {
                if e.valid {
                    e.valid = false;
                    self.stats.invalidations += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Marks every entry invalid except read-only copies (which "can never
    /// be invalid") and the paths `keep` accepts (locally-dirty files,
    /// whose cached copy is newer than anything a server holds). Used when
    /// Venus discovers a server restarted: its callback promises died with
    /// it, so every copy that relied on one must be revalidated on next
    /// use. Returns how many entries were invalidated.
    pub fn invalidate_suspect(&mut self, keep: impl Fn(&str) -> bool) -> usize {
        let mut n = 0;
        for (path, e) in self.entries.iter_mut() {
            if e.valid && !e.status.read_only && !keep(path) {
                e.valid = false;
                self.stats.invalidations += 1;
                n += 1;
            }
        }
        n
    }

    /// Marks an entry valid again (after a successful validation) and
    /// optionally refreshes its status.
    pub fn revalidate(&mut self, path: &str, status: Option<VStatus>) {
        if let Some(e) = self.entries.get_mut(path) {
            e.valid = true;
            if let Some(s) = status {
                e.status = s;
            }
        }
    }

    /// Updates the contents of a cached entry in place (after a successful
    /// store: the cache copy is the new authoritative contents).
    pub fn update(&mut self, path: &str, data: Vec<u8>, status: VStatus) -> Vec<String> {
        self.insert(path, data, status, EntryKind::File)
    }

    /// Removes an entry outright (file deleted).
    pub fn remove(&mut self, path: &str) {
        if let Some(old) = self.entries.remove(path) {
            self.bytes -= old.data.len() as u64;
        }
    }

    /// Drops everything (used when simulating a workstation wipe or a
    /// different user sitting down at a public workstation).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Evicts least-recently-used entries until the policy is satisfied,
    /// never evicting `protect` (the entry just inserted).
    fn evict(&mut self, protect: &str) -> Vec<String> {
        let mut evicted = Vec::new();
        loop {
            let over = match self.policy {
                CachePolicy::CountLru(max) => self.entries.len() > max,
                CachePolicy::SpaceLru(max) => self.bytes > max,
            };
            if !over {
                break;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(p, _)| p.as_str() != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(p, _)| p.clone());
            match victim {
                Some(p) => {
                    if let Some(old) = self.entries.remove(&p) {
                        self.bytes -= old.data.len() as u64;
                    }
                    self.stats.evictions += 1;
                    evicted.push(p);
                }
                None => break, // only the protected entry remains
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::EntryKind as PKind;

    fn status(path: &str, version: u64, size: u64) -> VStatus {
        VStatus {
            path: path.to_string(),
            fid: 1,
            kind: PKind::File,
            size,
            version,
            mtime: 0,
            mode: 0o644,
            owner: 1,
            read_only: false,
        }
    }

    #[test]
    fn count_lru_evicts_oldest() {
        let mut c = Cache::new(CachePolicy::CountLru(2));
        c.insert("/v/a", vec![1], status("/v/a", 1, 1), EntryKind::File);
        c.insert("/v/b", vec![2], status("/v/b", 1, 1), EntryKind::File);
        // Touch /v/a so /v/b becomes LRU.
        c.get("/v/a");
        let evicted = c.insert("/v/c", vec![3], status("/v/c", 1, 1), EntryKind::File);
        assert_eq!(evicted, vec!["/v/b".to_string()]);
        assert!(c.peek("/v/a").is_some());
        assert!(c.peek("/v/b").is_none());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn space_lru_tracks_bytes() {
        let mut c = Cache::new(CachePolicy::SpaceLru(100));
        c.insert("/v/a", vec![0; 60], status("/v/a", 1, 60), EntryKind::File);
        c.insert("/v/b", vec![0; 30], status("/v/b", 1, 30), EntryKind::File);
        assert_eq!(c.bytes(), 90);
        // 50 more bytes forces /v/a (LRU) out.
        let evicted = c.insert("/v/c", vec![0; 50], status("/v/c", 1, 50), EntryKind::File);
        assert_eq!(evicted, vec!["/v/a".to_string()]);
        assert_eq!(c.bytes(), 80);
    }

    #[test]
    fn space_lru_never_evicts_the_new_entry() {
        let mut c = Cache::new(CachePolicy::SpaceLru(10));
        // A single oversized file stays cached (the policy can't satisfy
        // its bound, but evicting the file being opened would be absurd).
        let evicted = c.insert(
            "/v/huge",
            vec![0; 50],
            status("/v/huge", 1, 50),
            EntryKind::File,
        );
        assert!(evicted.is_empty());
        assert!(c.peek("/v/huge").is_some());
    }

    #[test]
    fn replacing_updates_bytes() {
        let mut c = Cache::new(CachePolicy::SpaceLru(1000));
        c.insert(
            "/v/a",
            vec![0; 100],
            status("/v/a", 1, 100),
            EntryKind::File,
        );
        c.insert("/v/a", vec![0; 10], status("/v/a", 2, 10), EntryKind::File);
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek("/v/a").unwrap().status.version, 2);
    }

    #[test]
    fn invalidate_and_revalidate() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert("/v/a", vec![1], status("/v/a", 1, 1), EntryKind::File);
        assert!(c.peek("/v/a").unwrap().valid);
        assert!(c.invalidate("/v/a"));
        assert!(!c.peek("/v/a").unwrap().valid);
        assert_eq!(c.stats().invalidations, 1);
        // Double-invalidation doesn't double-count.
        c.invalidate("/v/a");
        assert_eq!(c.stats().invalidations, 1);
        c.revalidate("/v/a", Some(status("/v/a", 5, 1)));
        let e = c.peek("/v/a").unwrap();
        assert!(e.valid);
        assert_eq!(e.status.version, 5);
        assert!(!c.invalidate("/v/ghost"));
    }

    #[test]
    fn remove_and_clear() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert("/v/a", vec![0; 5], status("/v/a", 1, 5), EntryKind::File);
        c.insert("/v/b", vec![0; 5], status("/v/b", 1, 5), EntryKind::File);
        c.remove("/v/a");
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        for _ in 0..8 {
            c.count_hit();
        }
        for _ in 0..2 {
            c.count_miss();
        }
        assert!((c.stats().hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn directory_entries_coexist_with_files() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert(
            "/v/dir",
            b"fa\nfb\n".to_vec(),
            status("/v/dir", 1, 6),
            EntryKind::Directory,
        );
        c.insert(
            "/v/dir/a",
            vec![1],
            status("/v/dir/a", 1, 1),
            EntryKind::File,
        );
        assert_eq!(c.peek("/v/dir").unwrap().kind, EntryKind::Directory);
        assert_eq!(c.peek("/v/dir/a").unwrap().kind, EntryKind::File);
    }
}
