//! The whole-file cache.
//!
//! "Part of the disk on each workstation is used to store local files,
//! while the rest is used as a cache of files in Vice. ... Virtue caches
//! entire files along with their status and custodianship information"
//! (Section 3.2). Entries hold complete file contents (or a directory's
//! serialized listing, used for client-side pathname traversal in the
//! revised design) plus the status block validation compares.
//!
//! Two eviction policies, matching Section 3.5.1 vs 5.3:
//! count-limited LRU (the prototype — "Venus limits the total number of
//! files in the cache rather than the total size") and space-limited LRU
//! (the revised implementation).
//!
//! Recency is an intrusive doubly-linked list threaded through a slot
//! slab, with a `HashMap` from interned `Arc<str>` paths to slot indices:
//! lookup, touch, insert, and each eviction are all O(1), where the
//! original implementation rescanned every entry per victim. Contents are
//! refcounted [`Payload`]s, so a cache hit hands bytes back without
//! copying and eviction returns the interned key rather than allocating a
//! fresh `String`.

use crate::config::CachePolicy;
use crate::proto::{Payload, VStatus};
use std::collections::HashMap;
use std::sync::Arc;

/// What a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A whole file.
    File,
    /// A directory's serialized listing (client-side traversal).
    Directory,
}

/// One cached object.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Entire contents (file bytes or listing blob), shared by refcount
    /// with whoever fetched or opened them.
    pub data: Payload,
    /// Status as of the fetch (version is what validation compares).
    pub status: VStatus,
    /// Entry kind.
    pub kind: EntryKind,
    /// Callback-mode validity: true while the server's promise stands.
    /// Check-on-open mode ignores this and always revalidates.
    pub valid: bool,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Opens satisfied without fetching (file present and current).
    pub hits: u64,
    /// Opens that required a whole-file fetch.
    pub misses: u64,
    /// Entries evicted by the policy.
    pub evictions: u64,
    /// Entries invalidated by callback breaks.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit ratio over file opens; 0 when no opens yet.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sentinel slot index terminating the recency list.
const NIL: usize = usize::MAX;

/// A slab slot: the entry plus its links in the recency list.
#[derive(Debug)]
struct Slot {
    /// The interned path, shared with the index key.
    path: Arc<str>,
    entry: CacheEntry,
    /// More recently used neighbor (toward the head).
    prev: usize,
    /// Less recently used neighbor (toward the tail).
    next: usize,
}

/// The Venus file cache.
#[derive(Debug)]
pub struct Cache {
    /// Slot slab; freed indices are recycled via `free`.
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Interned path → slot index.
    index: HashMap<Arc<str>, usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty).
    tail: usize,
    policy: CachePolicy,
    bytes: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache under the given policy.
    pub fn new(policy: CachePolicy) -> Cache {
        Cache {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            policy,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Counts a hit (caller decides, since validity rules differ by mode).
    pub fn count_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Counts a miss.
    pub fn count_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Unlinks slot `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links slot `i` in as the most recently used.
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up an entry, refreshing its LRU position.
    pub fn get(&mut self, path: &str) -> Option<&CacheEntry> {
        let i = *self.index.get(path)?;
        self.detach(i);
        self.push_front(i);
        Some(&self.slots[i].entry)
    }

    /// Looks up without touching LRU state (for inspection in tests and
    /// metrics).
    pub fn peek(&self, path: &str) -> Option<&CacheEntry> {
        self.index.get(path).map(|&i| &self.slots[i].entry)
    }

    /// Inserts or replaces an entry, then evicts per policy. Returns the
    /// interned paths evicted.
    pub fn insert(
        &mut self,
        path: &str,
        data: Payload,
        status: VStatus,
        kind: EntryKind,
    ) -> Vec<Arc<str>> {
        self.bytes += data.len() as u64;
        let entry = CacheEntry {
            data,
            status,
            kind,
            valid: true,
        };
        let protect = match self.index.get(path) {
            Some(&i) => {
                // Replace in place, keeping the interned key, and make the
                // entry most recent (the old implementation removed and
                // reinserted, with the same net recency).
                self.bytes -= self.slots[i].entry.data.len() as u64;
                self.slots[i].entry = entry;
                self.detach(i);
                self.push_front(i);
                i
            }
            None => {
                let key: Arc<str> = Arc::from(path);
                let slot = Slot {
                    path: Arc::clone(&key),
                    entry,
                    prev: NIL,
                    next: NIL,
                };
                let i = match self.free.pop() {
                    Some(i) => {
                        self.slots[i] = slot;
                        i
                    }
                    None => {
                        self.slots.push(slot);
                        self.slots.len() - 1
                    }
                };
                self.index.insert(key, i);
                self.push_front(i);
                i
            }
        };
        self.evict(protect)
    }

    /// Marks an entry invalid (callback break). Returns true if present.
    pub fn invalidate(&mut self, path: &str) -> bool {
        match self.index.get(path) {
            Some(&i) => {
                let e = &mut self.slots[i].entry;
                if e.valid {
                    e.valid = false;
                    self.stats.invalidations += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Marks every entry invalid except read-only copies (which "can never
    /// be invalid") and the paths `keep` accepts (locally-dirty files,
    /// whose cached copy is newer than anything a server holds). Used when
    /// Venus discovers a server restarted: its callback promises died with
    /// it, so every copy that relied on one must be revalidated on next
    /// use. Returns the interned paths invalidated.
    pub fn invalidate_suspect(&mut self, keep: impl Fn(&str) -> bool) -> Vec<Arc<str>> {
        let mut hit = Vec::new();
        let mut i = self.head;
        while i != NIL {
            let slot = &mut self.slots[i];
            let e = &mut slot.entry;
            if e.valid && !e.status.read_only && !keep(&slot.path) {
                e.valid = false;
                self.stats.invalidations += 1;
                hit.push(Arc::clone(&slot.path));
            }
            i = slot.next;
        }
        hit
    }

    /// Marks an entry valid again (after a successful validation) and
    /// optionally refreshes its status.
    pub fn revalidate(&mut self, path: &str, status: Option<VStatus>) {
        if let Some(&i) = self.index.get(path) {
            let e = &mut self.slots[i].entry;
            e.valid = true;
            if let Some(s) = status {
                e.status = s;
            }
        }
    }

    /// Updates the contents of a cached entry in place (after a successful
    /// store: the cache copy is the new authoritative contents).
    pub fn update(&mut self, path: &str, data: Payload, status: VStatus) -> Vec<Arc<str>> {
        self.insert(path, data, status, EntryKind::File)
    }

    /// Removes an entry outright (file deleted).
    pub fn remove(&mut self, path: &str) {
        if let Some(i) = self.index.remove(path) {
            self.bytes -= self.slots[i].entry.data.len() as u64;
            self.detach(i);
            self.release(i);
        }
    }

    /// Drops everything (used when simulating a workstation wipe or a
    /// different user sitting down at a public workstation).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Returns slot `i` to the free list, dropping its contents.
    fn release(&mut self, i: usize) {
        // Leave a tombstone so the payload's refcount drops now, not when
        // the slot is eventually reused.
        self.slots[i].entry.data = Payload::empty();
        self.slots[i].path = Arc::from("");
        self.free.push(i);
    }

    /// Evicts least-recently-used entries until the policy is satisfied,
    /// never evicting `protect` (the entry just inserted). Each eviction is
    /// O(1): the victim is the list tail (or its neighbor when the tail is
    /// protected), where the original implementation scanned every entry.
    fn evict(&mut self, protect: usize) -> Vec<Arc<str>> {
        let mut evicted = Vec::new();
        loop {
            let over = match self.policy {
                CachePolicy::CountLru(max) => self.index.len() > max,
                CachePolicy::SpaceLru(max) => self.bytes > max,
            };
            if !over {
                break;
            }
            let mut victim = self.tail;
            if victim == protect {
                victim = self.slots[victim].prev;
            }
            if victim == NIL {
                break; // only the protected entry remains
            }
            let path = Arc::clone(&self.slots[victim].path);
            self.bytes -= self.slots[victim].entry.data.len() as u64;
            self.index.remove(&path);
            self.detach(victim);
            self.release(victim);
            self.stats.evictions += 1;
            evicted.push(path);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::EntryKind as PKind;
    use itc_sim::SimRng;

    fn status(path: &str, version: u64, size: u64) -> VStatus {
        VStatus {
            path: path.to_string(),
            fid: 1,
            kind: PKind::File,
            size,
            version,
            mtime: 0,
            mode: 0o644,
            owner: 1,
            read_only: false,
        }
    }

    fn paths(v: &[Arc<str>]) -> Vec<&str> {
        v.iter().map(|p| &**p).collect()
    }

    #[test]
    fn count_lru_evicts_oldest() {
        let mut c = Cache::new(CachePolicy::CountLru(2));
        c.insert(
            "/v/a",
            vec![1].into(),
            status("/v/a", 1, 1),
            EntryKind::File,
        );
        c.insert(
            "/v/b",
            vec![2].into(),
            status("/v/b", 1, 1),
            EntryKind::File,
        );
        // Touch /v/a so /v/b becomes LRU.
        c.get("/v/a");
        let evicted = c.insert(
            "/v/c",
            vec![3].into(),
            status("/v/c", 1, 1),
            EntryKind::File,
        );
        assert_eq!(paths(&evicted), ["/v/b"]);
        assert!(c.peek("/v/a").is_some());
        assert!(c.peek("/v/b").is_none());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn space_lru_tracks_bytes() {
        let mut c = Cache::new(CachePolicy::SpaceLru(100));
        c.insert(
            "/v/a",
            vec![0; 60].into(),
            status("/v/a", 1, 60),
            EntryKind::File,
        );
        c.insert(
            "/v/b",
            vec![0; 30].into(),
            status("/v/b", 1, 30),
            EntryKind::File,
        );
        assert_eq!(c.bytes(), 90);
        // 50 more bytes forces /v/a (LRU) out.
        let evicted = c.insert(
            "/v/c",
            vec![0; 50].into(),
            status("/v/c", 1, 50),
            EntryKind::File,
        );
        assert_eq!(paths(&evicted), ["/v/a"]);
        assert_eq!(c.bytes(), 80);
    }

    #[test]
    fn space_lru_never_evicts_the_new_entry() {
        let mut c = Cache::new(CachePolicy::SpaceLru(10));
        // A single oversized file stays cached (the policy can't satisfy
        // its bound, but evicting the file being opened would be absurd).
        let evicted = c.insert(
            "/v/huge",
            vec![0; 50].into(),
            status("/v/huge", 1, 50),
            EntryKind::File,
        );
        assert!(evicted.is_empty());
        assert!(c.peek("/v/huge").is_some());
    }

    #[test]
    fn replacing_updates_bytes() {
        let mut c = Cache::new(CachePolicy::SpaceLru(1000));
        c.insert(
            "/v/a",
            vec![0; 100].into(),
            status("/v/a", 1, 100),
            EntryKind::File,
        );
        c.insert(
            "/v/a",
            vec![0; 10].into(),
            status("/v/a", 2, 10),
            EntryKind::File,
        );
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek("/v/a").unwrap().status.version, 2);
    }

    #[test]
    fn invalidate_and_revalidate() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert(
            "/v/a",
            vec![1].into(),
            status("/v/a", 1, 1),
            EntryKind::File,
        );
        assert!(c.peek("/v/a").unwrap().valid);
        assert!(c.invalidate("/v/a"));
        assert!(!c.peek("/v/a").unwrap().valid);
        assert_eq!(c.stats().invalidations, 1);
        // Double-invalidation doesn't double-count.
        c.invalidate("/v/a");
        assert_eq!(c.stats().invalidations, 1);
        c.revalidate("/v/a", Some(status("/v/a", 5, 1)));
        let e = c.peek("/v/a").unwrap();
        assert!(e.valid);
        assert_eq!(e.status.version, 5);
        assert!(!c.invalidate("/v/ghost"));
    }

    #[test]
    fn remove_and_clear() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert(
            "/v/a",
            vec![0; 5].into(),
            status("/v/a", 1, 5),
            EntryKind::File,
        );
        c.insert(
            "/v/b",
            vec![0; 5].into(),
            status("/v/b", 1, 5),
            EntryKind::File,
        );
        c.remove("/v/a");
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 5);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        for _ in 0..8 {
            c.count_hit();
        }
        for _ in 0..2 {
            c.count_miss();
        }
        assert!((c.stats().hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn directory_entries_coexist_with_files() {
        let mut c = Cache::new(CachePolicy::CountLru(10));
        c.insert(
            "/v/dir",
            b"fa\nfb\n".to_vec().into(),
            status("/v/dir", 1, 6),
            EntryKind::Directory,
        );
        c.insert(
            "/v/dir/a",
            vec![1].into(),
            status("/v/dir/a", 1, 1),
            EntryKind::File,
        );
        assert_eq!(c.peek("/v/dir").unwrap().kind, EntryKind::Directory);
        assert_eq!(c.peek("/v/dir/a").unwrap().kind, EntryKind::File);
    }

    #[test]
    fn slots_are_recycled_after_eviction() {
        let mut c = Cache::new(CachePolicy::CountLru(2));
        for i in 0..100 {
            let p = format!("/v/f{i}");
            c.insert(&p, vec![0; 4].into(), status(&p, 1, 4), EntryKind::File);
        }
        assert_eq!(c.len(), 2);
        // The slab never grows past capacity + the one slot in flight.
        assert!(c.slots.len() <= 3, "slab grew to {}", c.slots.len());
        assert_eq!(c.stats().evictions, 98);
    }

    /// The reference implementation the O(1) list replaced: a full scan
    /// for the entry with the smallest last-used tick. Driving both with
    /// the same random operation stream must evict identical victims in
    /// identical order — recency order and tick order are the same total
    /// order because ticks are unique and monotone.
    struct ScanModel {
        entries: HashMap<String, (u64, u64)>, // path -> (last_used, size)
        tick: u64,
        bytes: u64,
    }

    impl ScanModel {
        fn new() -> ScanModel {
            ScanModel {
                entries: HashMap::new(),
                tick: 0,
                bytes: 0,
            }
        }

        fn get(&mut self, path: &str) {
            self.tick += 1;
            let tick = self.tick;
            if let Some(e) = self.entries.get_mut(path) {
                e.0 = tick;
            }
        }

        fn insert(&mut self, path: &str, size: u64, policy: CachePolicy) -> Vec<String> {
            self.tick += 1;
            if let Some(old) = self.entries.remove(path) {
                self.bytes -= old.1;
            }
            self.bytes += size;
            self.entries.insert(path.to_string(), (self.tick, size));
            let mut evicted = Vec::new();
            loop {
                let over = match policy {
                    CachePolicy::CountLru(max) => self.entries.len() > max,
                    CachePolicy::SpaceLru(max) => self.bytes > max,
                };
                if !over {
                    break;
                }
                let victim = self
                    .entries
                    .iter()
                    .filter(|(p, _)| p.as_str() != path)
                    .min_by_key(|(_, e)| e.0)
                    .map(|(p, _)| p.clone());
                match victim {
                    Some(p) => {
                        let old = self.entries.remove(&p).unwrap();
                        self.bytes -= old.1;
                        evicted.push(p);
                    }
                    None => break,
                }
            }
            evicted
        }

        fn remove(&mut self, path: &str) {
            if let Some(old) = self.entries.remove(path) {
                self.bytes -= old.1;
            }
        }
    }

    #[test]
    fn list_lru_evicts_same_victims_as_scan() {
        for (seed, policy) in [
            (0x1985_0001, CachePolicy::CountLru(8)),
            (0x1985_0002, CachePolicy::CountLru(1)),
            (0x1985_0003, CachePolicy::SpaceLru(200)),
            (0x1985_0004, CachePolicy::SpaceLru(64)),
        ] {
            let mut rng = SimRng::seeded(seed);
            let mut cache = Cache::new(policy);
            let mut model = ScanModel::new();
            for step in 0..2000 {
                let path = format!("/v/f{}", rng.range(0, 24));
                match rng.range(0, 10) {
                    0..=4 => {
                        let size = rng.range(1, 64);
                        let got = cache.insert(
                            &path,
                            vec![0u8; size as usize].into(),
                            status(&path, 1, size),
                            EntryKind::File,
                        );
                        let want = model.insert(&path, size, policy);
                        assert_eq!(
                            paths(&got),
                            want.iter().map(String::as_str).collect::<Vec<_>>(),
                            "step {step} policy {policy:?}"
                        );
                    }
                    5..=8 => {
                        cache.get(&path);
                        model.get(&path);
                    }
                    _ => {
                        cache.remove(&path);
                        model.remove(&path);
                    }
                }
                assert_eq!(cache.len(), model.entries.len(), "step {step}");
                assert_eq!(cache.bytes(), model.bytes, "step {step}");
            }
        }
    }
}
