//! The virtual clock and its time type.
//!
//! All simulated durations and instants are [`SimTime`] values: microseconds
//! since the start of the run, stored as `u64`. Microsecond resolution is
//! fine enough for per-call CPU charges (tens of microseconds) and coarse
//! enough that an 8-hour simulated day (2.9 × 10^10 µs) is nowhere near
//! overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instant or duration in virtual time, in microseconds.
///
/// `SimTime` is deliberately a single type for both instants and durations —
/// the simulation does arithmetic like "arrival + service = completion"
/// constantly and a two-type scheme (à la `Instant`/`Duration`) would add
/// noise without catching real bugs here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (start of the simulation).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Constructs a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e6).round() as u64)
        }
    }

    /// Constructs a time from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Constructs a time from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// This time as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; useful for "how much later is b than a" when
    /// ordering is uncertain.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// The shared virtual clock.
///
/// The clock only moves forward. Each workstation "process" in an experiment
/// keeps its own local notion of time (its next-free instant); the shared
/// clock tracks the global high-water mark, which is what utilization windows
/// and experiment durations are measured against.
///
/// The high-water mark is an atomic so per-cluster simulation workers can
/// publish their progress concurrently: `advance_to` is a `fetch_max`, whose
/// result is independent of the order the workers arrive in — the final
/// value is the maximum either way, which is exactly the monotone-max
/// semantics the sequential executor had.
#[derive(Debug, Default)]
pub struct Clock {
    now: AtomicU64,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Clock> {
        Arc::new(Clock {
            now: AtomicU64::new(0),
        })
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.load(Ordering::SeqCst))
    }

    /// Advances the clock to `t` if `t` is later than the current time.
    /// Never moves backward (a `fetch_max`, safe under concurrent callers).
    pub fn advance_to(&self, t: SimTime) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }

    /// Advances the clock by `d` from its current value and returns the new
    /// time.
    pub fn advance_by(&self, d: SimTime) -> SimTime {
        SimTime(self.now.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Resets the clock to zero. Intended for reusing one topology across
    /// repeated experiment trials.
    pub fn reset(&self) {
        self.now.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(3);
        assert_eq!(a + b, SimTime::from_secs(5));
        assert_eq!(b - a, SimTime::from_secs(1));
        assert_eq!(a * 4, SimTime::from_secs(8));
        assert_eq!(b / 3, SimTime::from_secs(1));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1));
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_secs(10));
        assert_eq!(c.now(), SimTime::from_secs(10));
        // Attempting to move backward is a no-op.
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(10));
        let t = c.advance_by(SimTime::from_secs(1));
        assert_eq!(t, SimTime::from_secs(11));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
