//! The cost model: every timing constant in one place.
//!
//! Absolute values are chosen to be plausible for the paper's 1985 hardware
//! (Sun-2 class workstations, 10 Mb/s Ethernet, Vax-class servers) and are
//! calibrated so that the 5-phase benchmark takes on the order of 1000
//! virtual seconds when run locally, matching Section 5.2. The *claims* we
//! reproduce are ratios and shapes — remote/local slowdown, call-mix
//! percentages, utilization, scalability knees — which emerge from protocol
//! structure, with these constants setting the scale.
//!
//! The enums here select between the prototype's design choices and the
//! revised implementation's (Section 5.3): validation mode, pathname
//! traversal site, server process structure, and encryption implementation.
//! Each ablation experiment flips exactly one of them.

use crate::clock::SimTime;

/// How cached copies are kept consistent (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationMode {
    /// The prototype: Venus checks the timestamp with the custodian on every
    /// open of a cached file. Simple, stateless servers — but validation
    /// traffic dominates (65% of all server calls in Section 5.2).
    CheckOnOpen,
    /// The revised design: the server records a callback per cached copy and
    /// notifies workstations when a file is modified. Cached copies are used
    /// without contacting the server until a callback breaks.
    Callback,
}

/// Which side walks pathnames (Sections 4 and 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraversalMode {
    /// The prototype: Venus presents entire pathnames and the server walks
    /// the directory tree, charging server CPU per component.
    ServerSide,
    /// The revised design: Venus caches directories, maps a pathname to a
    /// fixed-length file identifier itself, and presents only the fid.
    ClientSide,
}

/// Server process structure (Section 3.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerStructure {
    /// The prototype: one Unix process per (user, workstation) pair. Every
    /// request pays a heavyweight context switch, and cross-process
    /// functions (locking) pay an extra IPC hop to a dedicated process.
    ProcessPerClient,
    /// The revised design: a single process with lightweight threads and
    /// shared data structures.
    SingleProcessLwp,
}

/// How network encryption is performed (Sections 3.4 and 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncryptionMode {
    /// No encryption — insecure, measured only as a baseline.
    None,
    /// Software encryption: every byte costs CPU on both ends. The paper
    /// judged this "too slow to be viable".
    Software,
    /// Hardware encryption chips: negligible per-byte cost, small fixed
    /// setup per message.
    Hardware,
}

/// All timing constants used by the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Costs {
    // --- Network ---
    /// One-way latency for a message within a cluster (propagation, media
    /// access, protocol processing).
    pub net_latency_intra: SimTime,
    /// Additional one-way latency per bridge crossed (Figure 2-2: cluster →
    /// backbone → cluster is two hops).
    pub net_latency_per_hop: SimTime,
    /// Effective network throughput for bulk transfer, bytes per second.
    pub net_bytes_per_sec: u64,

    // --- Server CPU (charged to the custodian's CPU resource) ---
    /// Fixed CPU to receive, decrypt header, dispatch and reply to any call.
    pub srv_cpu_per_call: SimTime,
    /// Extra CPU for a heavyweight context switch per request when the
    /// server runs one process per client.
    pub srv_cpu_context_switch: SimTime,
    /// Extra IPC hop to the dedicated lock-server process, per lock/unlock,
    /// in the process-per-client structure.
    pub srv_cpu_lock_ipc: SimTime,
    /// CPU per pathname component walked on the server (server-side
    /// traversal only).
    pub srv_cpu_per_component: SimTime,
    /// CPU to perform a cache-validity check (timestamp compare).
    pub srv_cpu_validate: SimTime,
    /// CPU to gather file status.
    pub srv_cpu_getstatus: SimTime,
    /// CPU per 4 KiB block moved through the server on fetch/store.
    pub srv_cpu_per_block: SimTime,
    /// CPU to register or break one callback promise.
    pub srv_cpu_callback: SimTime,
    /// CPU to evaluate protection (CPS construction + ACL check).
    pub srv_cpu_protection: SimTime,

    // --- Server disk ---
    /// Positioning time per disk transfer (seek + rotation).
    pub disk_access: SimTime,
    /// Disk throughput, bytes per second.
    pub disk_bytes_per_sec: u64,

    // --- Salvage (post-crash volume recovery) ---
    /// Fixed CPU to start a salvage pass on one volume (open the
    /// checkpoint, set up the journal scan).
    pub salvage_fixed: SimTime,
    /// CPU to re-apply one committed journal record during salvage.
    pub salvage_per_record: SimTime,

    // --- Workstation ---
    /// Fixed CPU for Venus to intercept a file-system call.
    pub ws_cpu_intercept: SimTime,
    /// CPU per pathname component resolved on the client (client-side
    /// traversal only).
    pub ws_cpu_per_component: SimTime,
    /// Local-disk positioning time per cached-file access.
    pub ws_disk_access: SimTime,
    /// Local-disk throughput, bytes per second.
    pub ws_disk_bytes_per_sec: u64,

    // --- Encryption ---
    /// CPU per byte for software encryption/decryption (each end).
    pub crypt_sw_per_byte: SimTime,
    /// Fixed per-message cost with hardware encryption.
    pub crypt_hw_per_msg: SimTime,
    /// CPU for the 3-message mutual authentication handshake (each end).
    pub crypt_handshake: SimTime,

    /// Time a client waits before declaring a server unreachable.
    pub rpc_timeout: SimTime,

    // --- Low-function workstation attachment (Section 3.3) ---
    /// One-way latency on the cheap LAN between a PC and its surrogate.
    pub pc_net_latency: SimTime,
    /// Throughput of the cheap LAN, bytes per second.
    pub pc_net_bytes_per_sec: u64,
    /// CPU on the surrogate host to serve one PC request.
    pub surrogate_cpu_per_call: SimTime,

    // --- Application work (the benchmark's own computation) ---
    /// Workstation CPU to compile one source file, per KiB of source.
    pub app_compile_per_kib: SimTime,
    /// Workstation CPU to scan (read and examine) one KiB of data.
    pub app_scan_per_kib: SimTime,
}

impl Costs {
    /// Constants approximating the paper's 1985 prototype environment.
    ///
    /// Calibration anchors, all from Section 5.2: server CPU is the
    /// bottleneck and sits near 40% mean utilization with ~20 mostly-idle
    /// clients per server (which implies per-call server CPU in the
    /// hundreds of milliseconds — the prototype forked per-client Unix
    /// processes and walked full pathnames); the 5-phase benchmark takes
    /// on the order of 1000 s locally on a Sun (compilation-dominated);
    /// and the same benchmark is ~80% slower when every file comes from
    /// Vice (which implies whole-file RPC throughput well below raw
    /// Ethernet — the prototype used a user-level reliable-byte-stream
    /// RPC).
    pub fn prototype_1985() -> Costs {
        Costs {
            net_latency_intra: SimTime::from_millis(10),
            net_latency_per_hop: SimTime::from_millis(8),
            net_bytes_per_sec: 80_000, // user-level stream RPC, not raw wire

            srv_cpu_per_call: SimTime::from_millis(500),
            srv_cpu_context_switch: SimTime::from_millis(60),
            srv_cpu_lock_ipc: SimTime::from_millis(40),
            srv_cpu_per_component: SimTime::from_millis(15),
            srv_cpu_validate: SimTime::from_millis(60),
            srv_cpu_getstatus: SimTime::from_millis(50),
            srv_cpu_per_block: SimTime::from_millis(12),
            srv_cpu_callback: SimTime::from_millis(5),
            srv_cpu_protection: SimTime::from_millis(20),

            disk_access: SimTime::from_millis(60),
            disk_bytes_per_sec: 500_000,

            salvage_fixed: SimTime::from_millis(200),
            salvage_per_record: SimTime::from_millis(5),

            ws_cpu_intercept: SimTime::from_millis(100),
            ws_cpu_per_component: SimTime::from_millis(2),
            ws_disk_access: SimTime::from_millis(150),
            ws_disk_bytes_per_sec: 500_000,

            crypt_sw_per_byte: SimTime::from_micros(20), // ~50 KB/s in software
            crypt_hw_per_msg: SimTime::from_millis(1),
            crypt_handshake: SimTime::from_millis(100),

            rpc_timeout: SimTime::from_secs(15),

            pc_net_latency: SimTime::from_millis(15),
            pc_net_bytes_per_sec: 30_000, // serial-line class attachment
            surrogate_cpu_per_call: SimTime::from_millis(80),

            app_compile_per_kib: SimTime::from_millis(2_000),
            app_scan_per_kib: SimTime::from_millis(30),
        }
    }

    /// Time to push `bytes` over the cheap PC attachment.
    pub fn pc_transfer(&self, bytes: u64) -> SimTime {
        SimTime::from_micros(bytes.saturating_mul(1_000_000) / self.pc_net_bytes_per_sec)
    }

    /// Time to push `bytes` through the network (bulk-transfer component
    /// only; latency is added separately per message).
    pub fn net_transfer(&self, bytes: u64) -> SimTime {
        SimTime::from_micros(bytes.saturating_mul(1_000_000) / self.net_bytes_per_sec)
    }

    /// One-way message latency between nodes separated by `hops` bridges.
    pub fn net_latency(&self, hops: u32) -> SimTime {
        self.net_latency_intra + self.net_latency_per_hop * hops as u64
    }

    /// Server disk service time to move `bytes`.
    pub fn disk_transfer(&self, bytes: u64) -> SimTime {
        self.disk_access
            + SimTime::from_micros(bytes.saturating_mul(1_000_000) / self.disk_bytes_per_sec)
    }

    /// Time to salvage one volume after a crash: a fixed setup charge,
    /// one disk pass over the journal extent to scan, and per-record CPU
    /// to re-apply the committed tail onto the checkpoint image. Linear in
    /// journal length — the relationship the salvage bench measures.
    pub fn salvage_time(&self, journal_bytes: u64, records: u64) -> SimTime {
        self.salvage_fixed + self.salvage_per_record * records + self.disk_transfer(journal_bytes)
    }

    /// Workstation local-disk service time to move `bytes`.
    pub fn ws_disk_transfer(&self, bytes: u64) -> SimTime {
        self.ws_disk_access
            + SimTime::from_micros(bytes.saturating_mul(1_000_000) / self.ws_disk_bytes_per_sec)
    }

    /// Server CPU charge to move `bytes` through on fetch/store, in 4 KiB
    /// blocks (rounded up).
    pub fn srv_block_cpu(&self, bytes: u64) -> SimTime {
        let blocks = bytes.div_ceil(4096).max(1);
        self.srv_cpu_per_block * blocks
    }

    /// Per-end encryption cost for a message of `bytes` under `mode`.
    pub fn crypt_cost(&self, mode: EncryptionMode, bytes: u64) -> SimTime {
        match mode {
            EncryptionMode::None => SimTime::ZERO,
            EncryptionMode::Software => self.crypt_sw_per_byte * bytes,
            EncryptionMode::Hardware => self.crypt_hw_per_msg,
        }
    }
}

impl Default for Costs {
    fn default() -> Costs {
        Costs::prototype_1985()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_times_scale_linearly() {
        let c = Costs::prototype_1985();
        let one = c.net_transfer(c.net_bytes_per_sec);
        assert_eq!(one, SimTime::from_secs(1));
        let two = c.net_transfer(2 * c.net_bytes_per_sec);
        assert_eq!(two, SimTime::from_secs(2));
    }

    #[test]
    fn latency_adds_per_hop() {
        let c = Costs::prototype_1985();
        assert_eq!(c.net_latency(0), c.net_latency_intra);
        assert_eq!(
            c.net_latency(2),
            c.net_latency_intra + c.net_latency_per_hop * 2
        );
    }

    #[test]
    fn disk_includes_positioning() {
        let c = Costs::prototype_1985();
        assert_eq!(c.disk_transfer(0), c.disk_access);
        assert_eq!(
            c.disk_transfer(c.disk_bytes_per_sec),
            c.disk_access + SimTime::from_secs(1)
        );
    }

    #[test]
    fn block_cpu_rounds_up() {
        let c = Costs::prototype_1985();
        assert_eq!(c.srv_block_cpu(1), c.srv_cpu_per_block);
        assert_eq!(c.srv_block_cpu(4096), c.srv_cpu_per_block);
        assert_eq!(c.srv_block_cpu(4097), c.srv_cpu_per_block * 2);
    }

    #[test]
    fn salvage_time_is_linear_in_records_and_bytes() {
        let c = Costs::prototype_1985();
        assert_eq!(c.salvage_time(0, 0), c.salvage_fixed + c.disk_access);
        // Adding records adds exactly per-record CPU.
        let base = c.salvage_time(1000, 10);
        assert_eq!(c.salvage_time(1000, 11), base + c.salvage_per_record);
        // Adding a full second of journal bytes adds a second of disk.
        assert_eq!(
            c.salvage_time(1000 + c.disk_bytes_per_sec, 10),
            base + SimTime::from_secs(1)
        );
    }

    #[test]
    fn crypt_modes_order_as_expected() {
        let c = Costs::prototype_1985();
        let msg = 8 * 1024;
        let none = c.crypt_cost(EncryptionMode::None, msg);
        let hw = c.crypt_cost(EncryptionMode::Hardware, msg);
        let sw = c.crypt_cost(EncryptionMode::Software, msg);
        assert_eq!(none, SimTime::ZERO);
        assert!(hw < sw, "hardware must be cheaper than software");
    }
}
