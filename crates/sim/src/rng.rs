//! Seeded randomness and the distributions the workload models need.
//!
//! Everything random in an experiment flows through one [`SimRng`] seeded at
//! the top of the run, so results are reproducible bit-for-bit. The
//! distribution sampling (exponential, log-normal, bounded Pareto,
//! geometric) is implemented here directly rather than pulling in
//! `rand_distr`: the formulas are a few lines each and keeping them local
//! makes the workload model self-contained and auditable.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source for simulations.
#[derive(Debug)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> SimRng {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Splits off an independent generator; used to give each simulated user
    /// a private stream so adding users does not perturb existing ones.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.rng.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of `items`. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Samples an index according to `weights` (need not be normalized).
    /// Panics if weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Exponential with the given mean, via inverse-CDF.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit(); // (0, 1]: avoids ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — the heavy-tailed
    /// distribution used for file sizes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.unit();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Geometric: number of Bernoulli(p) failures before the first success.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.unit();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Raw 64 random bits (for key material in tests and examples).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.rng.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        // Forking early must give the same child stream regardless of what
        // the parent does afterwards.
        let mut p1 = SimRng::seeded(7);
        let mut c1 = p1.fork();
        let _ = p1.next_u64();

        let mut p2 = SimRng::seeded(7);
        let mut c2 = p2.fork();
        for _ in 0..50 {
            let _ = p2.unit();
        }
        for _ in 0..20 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seeded(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = SimRng::seeded(2);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.1, 512.0, 4_000_000.0);
            assert!((512.0..=4_000_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed_but_mostly_small() {
        let mut r = SimRng::seeded(3);
        let n = 20_000;
        let small = (0..n)
            .filter(|_| r.bounded_pareto(1.1, 512.0, 4_000_000.0) < 100_000.0)
            .count();
        // The vast majority of samples should be far below the cap.
        assert!(small as f64 / n as f64 > 0.9);
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::seeded(4);
        let weights = [0.65, 0.27, 0.04, 0.02, 0.02];
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[r.weighted_index(&weights)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - w).abs() < 0.01,
                "weight {i}: expected {w}, observed {observed}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seeded(6);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SimRng::seeded(8);
        let p: f64 = 0.25;
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.1, "mean was {mean}");
    }
}
