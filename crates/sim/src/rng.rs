//! Seeded randomness and the distributions the workload models need.
//!
//! Everything random in an experiment flows through one [`SimRng`] seeded at
//! the top of the run, so results are reproducible bit-for-bit. The
//! generator itself is a self-contained xoshiro256** seeded through
//! SplitMix64 — no external crates, so the whole suite builds and runs
//! hermetically — and the distribution sampling (exponential, log-normal,
//! bounded Pareto, geometric) is implemented here directly rather than
//! pulling in `rand_distr`: the formulas are a few lines each and keeping
//! them local makes the workload model self-contained and auditable.

/// SplitMix64: expands a 64-bit seed into well-mixed state words. This is
/// the reference seeding procedure recommended for the xoshiro family.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random source for simulations (xoshiro256**).
#[derive(Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Splits off an independent generator; used to give each simulated user
    /// a private stream so adding users does not perturb existing ones.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.next_u64())
    }

    /// Raw 64 random bits (xoshiro256** output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`. Uses rejection
    /// sampling, so the result is exactly uniform (no modulo bias).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        if span == 1 {
            return lo;
        }
        // Largest multiple of `span` that fits in u64: values at or above
        // it would bias the low residues, so redraw.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of `items`. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Samples an index according to `weights` (need not be normalized).
    /// Panics if weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Exponential with the given mean, via inverse-CDF.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit(); // (0, 1]: avoids ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — the heavy-tailed
    /// distribution used for file sizes.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.unit();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Geometric: number of Bernoulli(p) failures before the first success.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.unit();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(43);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_later_draws() {
        // Forking early must give the same child stream regardless of what
        // the parent does afterwards.
        let mut p1 = SimRng::seeded(7);
        let mut c1 = p1.fork();
        let _ = p1.next_u64();

        let mut p2 = SimRng::seeded(7);
        let mut c2 = p2.fork();
        for _ in 0..50 {
            let _ = p2.unit();
        }
        for _ in 0..20 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = SimRng::seeded(9);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit out of range: {u}");
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seeded(10);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Offset ranges respect their bounds.
        for _ in 0..1_000 {
            let v = r.range(100, 103);
            assert!((100..103).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seeded(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Deterministic for the same seed.
        let mut r2 = SimRng::seeded(11);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seeded(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = SimRng::seeded(2);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.1, 512.0, 4_000_000.0);
            assert!((512.0..=4_000_000.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed_but_mostly_small() {
        let mut r = SimRng::seeded(3);
        let n = 20_000;
        let small = (0..n)
            .filter(|_| r.bounded_pareto(1.1, 512.0, 4_000_000.0) < 100_000.0)
            .count();
        // The vast majority of samples should be far below the cap.
        assert!(small as f64 / n as f64 > 0.9);
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::seeded(4);
        let weights = [0.65, 0.27, 0.04, 0.02, 0.02];
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[r.weighted_index(&weights)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - w).abs() < 0.01,
                "weight {i}: expected {w}, observed {observed}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seeded(6);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SimRng::seeded(8);
        let p: f64 = 0.25;
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.1, "mean was {mean}");
    }
}
