//! Deterministic discrete-event scheduler.
//!
//! The original engine advanced each workstation sequentially and modelled
//! contention only through FIFO timestamps inside [`crate::Resource`]. This
//! module supplies the missing piece of a genuine discrete-event core: a
//! priority queue of events keyed by `(SimTime, class, tie, seq)` that the
//! owning system drains in virtual-time order. Request legs, server service,
//! reply legs, retry timeouts, and scheduled server crashes all become
//! entries in one calendar, so their interleavings are explicit rather than
//! implied by call order.
//!
//! Ordering is fully deterministic:
//!
//! * events at distinct times fire in time order;
//! * at the same instant, a lower [`EventClass`] fires first (lifecycle
//!   transitions precede message traffic, and crashes precede restarts, so
//!   "crash and restart both due now" leaves the server up with a bumped
//!   epoch);
//! * remaining ties are broken by a value drawn from a seeded [`SimRng`] at
//!   schedule time — two same-instant, same-class events from different
//!   sources fire in a seed-dependent but reproducible order;
//! * the insertion sequence number is the final, total tie-break.
//!
//! Since the parallel-simulation refactor the calendar is an *indexed*
//! heap: the binary heap holds only ordering keys, payloads live in a slab
//! keyed by [`EventId`]. Cancelling an event ([`Scheduler::cancel`] /
//! [`Scheduler::take`]) is an O(1) removal from the slab; the orphaned heap
//! key is lazily skipped when it reaches the front. This replaces the old
//! `drain_where`, which rebuilt the whole heap (O(n) churn per cancelled
//! timeout) — the drop shows up in [`EventStats::cancelled`] replacing the
//! rebuild counter.
//!
//! The queue deliberately does **not** enforce that events are scheduled in
//! the future: retry bookkeeping (a timeout that started counting when the
//! request departed) may be scheduled at an instant that is already past the
//! head of the queue. Monotonicity of observable state is the business of
//! [`crate::Clock`] and [`crate::Resource`], both of which only move forward.

use crate::clock::SimTime;
use crate::rng::SimRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a scheduled event, unique within one scheduler.
pub type EventId = u64;

/// Dispatch class: at equal times, lower classes fire first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Server crash transitions (state loss must precede everything else
    /// due at the same instant).
    Crash,
    /// Server restart transitions (after crashes, before traffic).
    Restart,
    /// Salvager passes bringing volumes back online (after restarts, so a
    /// restart scheduled at the same instant can enqueue them; before
    /// traffic, so a request due at the completion instant sees the volume
    /// online).
    Salvage,
    /// Silent-corruption injections from a fault plan (before traffic, so
    /// a request due at the same instant observes the damaged bytes —
    /// corruption "happened on the platter" before the request was served).
    Corrupt,
    /// Ordinary message/service/timeout events.
    Normal,
    /// Background scrubber passes (after all traffic due at the same
    /// instant: the scrubber only ever uses idle disk time).
    Scrub,
}

/// Counters describing everything the scheduler has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped and handed to the owner for execution.
    pub executed: u64,
    /// Events logically cancelled ([`Scheduler::cancel`] or
    /// [`Scheduler::take`]) — O(1) tombstones, never a heap rebuild.
    pub cancelled: u64,
    /// Largest number of live (scheduled, not yet fired or cancelled)
    /// events observed.
    pub high_water: usize,
}

impl EventStats {
    /// Folds another scheduler's counters into this one (used to report
    /// totals across per-cluster calendars).
    pub fn merge(&mut self, other: &EventStats) {
        self.scheduled += other.scheduled;
        self.executed += other.executed;
        self.cancelled += other.cancelled;
        // Calendars run concurrently, so the sum of per-calendar peaks is
        // the honest upper bound on simultaneous live events.
        self.high_water += other.high_water;
    }
}

/// The full ordering key of a queued event. Orders by
/// `(at, class, tie, seq)`; `id` rides along for the slab lookup.
#[derive(Debug, Clone, Copy)]
pub struct EventKey {
    /// Due time.
    pub at: SimTime,
    /// Dispatch class.
    pub class: EventClass,
    /// Seeded tie-break value drawn at schedule time.
    pub tie: u64,
    /// Insertion sequence (final total tie-break).
    pub seq: u64,
    /// The event's identifier.
    pub id: EventId,
}

impl EventKey {
    fn order(&self) -> (SimTime, EventClass, u64, u64) {
        (self.at, self.class, self.tie, self.seq)
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
// BinaryHeap is a max-heap; invert the comparison so the earliest key pops
// first.
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other.order().cmp(&self.order())
    }
}

/// One event popped from the queue.
#[derive(Debug)]
pub struct Firing<E> {
    /// The instant the event was scheduled for.
    pub at: SimTime,
    /// Its identifier.
    pub id: EventId,
    /// The payload.
    pub ev: E,
}

/// A deterministic event calendar (indexed heap: keys in a binary heap,
/// payloads in a slab, cancellation by tombstone).
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<EventKey>,
    live: HashMap<EventId, (SimTime, E)>,
    tie_rng: SimRng,
    next_seq: u64,
    stats: EventStats,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler whose same-instant tie-breaking is driven
    /// by the given seed.
    pub fn seeded(seed: u64) -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            tie_rng: SimRng::seeded(seed),
            next_seq: 0,
            stats: EventStats::default(),
        }
    }

    /// Schedules `ev` at `at` in the [`EventClass::Normal`] class.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> EventId {
        self.schedule_class(at, EventClass::Normal, ev)
    }

    /// Schedules `ev` at `at` in an explicit class.
    pub fn schedule_class(&mut self, at: SimTime, class: EventClass, ev: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tie = self.tie_rng.next_u64();
        self.heap.push(EventKey {
            at,
            class,
            tie,
            seq,
            id: seq,
        });
        self.live.insert(seq, (at, ev));
        self.stats.scheduled += 1;
        self.stats.high_water = self.stats.high_water.max(self.live.len());
        seq
    }

    /// Schedules `ev` at `at` in an explicit class **without consuming a
    /// tie-break draw**: the tie is pinned to zero and insertion order is
    /// the only same-key discriminator. Background machinery (scrubber
    /// passes, corruption injections) schedules through this so that
    /// enabling it never perturbs the seeded tie sequence of ordinary
    /// traffic — golden timings stay bit-identical.
    pub fn schedule_class_untied(&mut self, at: SimTime, class: EventClass, ev: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventKey {
            at,
            class,
            tie: 0,
            seq,
            id: seq,
        });
        self.live.insert(seq, (at, ev));
        self.stats.scheduled += 1;
        self.stats.high_water = self.stats.high_water.max(self.live.len());
        seq
    }

    /// Drops tombstoned keys off the front of the heap.
    fn skim(&mut self) {
        while let Some(k) = self.heap.peek() {
            if self.live.contains_key(&k.id) {
                return;
            }
            self.heap.pop();
        }
    }

    /// The instant of the next live event, if any.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|k| k.at)
    }

    /// The full ordering key of the next live event, if any. Exposed so an
    /// owner of several calendars (one per cluster) can merge-pop them in a
    /// deterministic total order.
    pub fn peek_key(&mut self) -> Option<EventKey> {
        self.skim();
        self.heap.peek().copied()
    }

    /// Pops the next live event in `(time, class, tie, seq)` order,
    /// skipping tombstones.
    pub fn pop(&mut self) -> Option<Firing<E>> {
        while let Some(k) = self.heap.pop() {
            if let Some((at, ev)) = self.live.remove(&k.id) {
                self.stats.executed += 1;
                return Some(Firing { at, id: k.id, ev });
            }
        }
        None
    }

    /// Pops the next live event only if it is due at or before `limit`.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<Firing<E>> {
        if self.peek_at()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Logically cancels event `id` in O(1): the payload is dropped now and
    /// the heap key is skipped when it surfaces. Returns whether the event
    /// was still pending. Cancelled events are never counted as executed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id).is_some() {
            self.stats.cancelled += 1;
            true
        } else {
            false
        }
    }

    /// Cancels event `id` and hands its payload (and due time) back to the
    /// caller — used by owners that must route a pending event (e.g. a
    /// queued callback delivery) to a different executor. O(1), like
    /// [`Scheduler::cancel`].
    pub fn take(&mut self, id: EventId) -> Option<Firing<E>> {
        let (at, ev) = self.live.remove(&id)?;
        self.stats.cancelled += 1;
        Some(Firing { at, id, ev })
    }

    /// Number of live queued events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the queue has no live events.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EventStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_regardless_of_insertion() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(3), "c");
        s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.stats().scheduled, 3);
        assert_eq!(s.stats().executed, 3);
        assert_eq!(s.stats().high_water, 3);
    }

    #[test]
    fn classes_order_same_instant_events() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        let t = SimTime::from_secs(5);
        s.schedule_class(t, EventClass::Normal, "traffic");
        s.schedule_class(t, EventClass::Restart, "restart");
        s.schedule_class(t, EventClass::Crash, "crash");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect();
        assert_eq!(order, vec!["crash", "restart", "traffic"]);
    }

    #[test]
    fn same_instant_ties_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<u32> {
            let mut s: Scheduler<u32> = Scheduler::seeded(seed);
            let t = SimTime::from_secs(1);
            for i in 0..16 {
                s.schedule(t, i);
            }
            std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect()
        };
        assert_eq!(run(7), run(7), "same seed must give the same order");
        assert_ne!(
            run(7),
            run(8),
            "different seeds should shuffle same-instant ties"
        );
    }

    #[test]
    fn pop_due_respects_the_limit() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(1), "early");
        s.schedule(SimTime::from_secs(10), "late");
        assert_eq!(s.pop_due(SimTime::from_secs(5)).unwrap().ev, "early");
        assert!(s.pop_due(SimTime::from_secs(5)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn cancel_is_a_tombstone_skipped_on_pop() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        let a = s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        assert!(s.cancel(a), "live event cancels");
        assert!(!s.cancel(a), "second cancel is a no-op");
        assert_eq!(s.len(), 1, "cancelled event no longer counts as live");
        assert_eq!(s.pop().unwrap().ev, "b", "tombstone is skipped");
        assert!(s.pop().is_none());
        let st = s.stats();
        assert_eq!(st.cancelled, 1);
        assert_eq!(st.executed, 1, "cancelled events are not executed");
    }

    #[test]
    fn take_returns_the_payload_and_due_time() {
        let mut s: Scheduler<(&str, u32)> = Scheduler::seeded(1);
        let brk = s.schedule(SimTime::from_secs(3), ("brk", 3));
        s.schedule(SimTime::from_secs(2), ("other", 0));
        let f = s.take(brk).expect("pending event");
        assert_eq!(f.at, SimTime::from_secs(3));
        assert_eq!(f.ev, ("brk", 3));
        assert!(s.take(brk).is_none(), "already taken");
        assert_eq!(s.pop().unwrap().ev.0, "other");
        assert_eq!(s.stats().cancelled, 1);
    }

    #[test]
    fn peek_key_skips_tombstones_and_merges_deterministically() {
        let mut s: Scheduler<&str> = Scheduler::seeded(9);
        let a = s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(4), "b");
        assert_eq!(s.peek_key().unwrap().at, SimTime::from_secs(1));
        s.cancel(a);
        let k = s.peek_key().unwrap();
        assert_eq!(k.at, SimTime::from_secs(4));
        // The popped firing matches the peeked key exactly.
        let f = s.pop().unwrap();
        assert_eq!(f.id, k.id);
        assert_eq!(f.ev, "b");
    }

    #[test]
    fn past_scheduling_is_allowed() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(10), "future");
        // Retry bookkeeping may schedule at an earlier instant.
        s.schedule(SimTime::from_secs(2), "past");
        assert_eq!(s.pop().unwrap().ev, "past");
        assert_eq!(s.pop().unwrap().ev, "future");
    }
}
