//! Deterministic discrete-event scheduler.
//!
//! The original engine advanced each workstation sequentially and modelled
//! contention only through FIFO timestamps inside [`crate::Resource`]. This
//! module supplies the missing piece of a genuine discrete-event core: a
//! priority queue of events keyed by `(SimTime, class, tie, seq)` that the
//! owning system drains in virtual-time order. Request legs, server service,
//! reply legs, retry timeouts, and scheduled server crashes all become
//! entries in one calendar, so their interleavings are explicit rather than
//! implied by call order.
//!
//! Ordering is fully deterministic:
//!
//! * events at distinct times fire in time order;
//! * at the same instant, a lower [`EventClass`] fires first (lifecycle
//!   transitions precede message traffic, and crashes precede restarts, so
//!   "crash and restart both due now" leaves the server up with a bumped
//!   epoch);
//! * remaining ties are broken by a value drawn from a seeded [`SimRng`] at
//!   schedule time — two same-instant, same-class events from different
//!   sources fire in a seed-dependent but reproducible order;
//! * the insertion sequence number is the final, total tie-break.
//!
//! The queue deliberately does **not** enforce that events are scheduled in
//! the future: retry bookkeeping (a timeout that started counting when the
//! request departed) may be scheduled at an instant that is already past the
//! head of the queue. Monotonicity of observable state is the business of
//! [`crate::Clock`] and [`crate::Resource`], both of which only move forward.

use crate::clock::SimTime;
use crate::rng::SimRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, unique within one scheduler.
pub type EventId = u64;

/// Dispatch class: at equal times, lower classes fire first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Server crash transitions (state loss must precede everything else
    /// due at the same instant).
    Crash,
    /// Server restart transitions (after crashes, before traffic).
    Restart,
    /// Salvager passes bringing volumes back online (after restarts, so a
    /// restart scheduled at the same instant can enqueue them; before
    /// traffic, so a request due at the completion instant sees the volume
    /// online).
    Salvage,
    /// Ordinary message/service/timeout events.
    Normal,
}

/// Counters describing everything the scheduler has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped and handed to the owner for execution.
    pub executed: u64,
    /// Events removed by [`Scheduler::drain_where`] without execution.
    pub drained: u64,
    /// Largest queue length observed.
    pub high_water: usize,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    class: EventClass,
    tie: u64,
    seq: u64,
    id: EventId,
    ev: E,
}

// BinaryHeap is a max-heap; invert the comparison so the earliest key pops
// first. Only the key participates in ordering — payloads need no bounds.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.class, other.tie, other.seq)
            .cmp(&(self.at, self.class, self.tie, self.seq))
    }
}

/// One event popped from the queue.
#[derive(Debug)]
pub struct Firing<E> {
    /// The instant the event was scheduled for.
    pub at: SimTime,
    /// Its identifier.
    pub id: EventId,
    /// The payload.
    pub ev: E,
}

/// A deterministic event calendar.
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    tie_rng: SimRng,
    next_seq: u64,
    stats: EventStats,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler whose same-instant tie-breaking is driven
    /// by the given seed.
    pub fn seeded(seed: u64) -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            tie_rng: SimRng::seeded(seed),
            next_seq: 0,
            stats: EventStats::default(),
        }
    }

    /// Schedules `ev` at `at` in the [`EventClass::Normal`] class.
    pub fn schedule(&mut self, at: SimTime, ev: E) -> EventId {
        self.schedule_class(at, EventClass::Normal, ev)
    }

    /// Schedules `ev` at `at` in an explicit class.
    pub fn schedule_class(&mut self, at: SimTime, class: EventClass, ev: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tie = self.tie_rng.next_u64();
        self.heap.push(Entry {
            at,
            class,
            tie,
            seq,
            id: seq,
            ev,
        });
        self.stats.scheduled += 1;
        self.stats.high_water = self.stats.high_water.max(self.heap.len());
        seq
    }

    /// The instant of the next event, if any.
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event in `(time, class, tie, seq)` order.
    pub fn pop(&mut self) -> Option<Firing<E>> {
        let e = self.heap.pop()?;
        self.stats.executed += 1;
        Some(Firing {
            at: e.at,
            id: e.id,
            ev: e.ev,
        })
    }

    /// Pops the next event only if it is due at or before `limit`.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<Firing<E>> {
        if self.peek_at()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Removes every queued event matching `pred`, returning them in
    /// `(time, class, tie, seq)` order without counting them as executed.
    /// Used by owners that must hand a category of events (e.g. callback
    /// deliveries) to a different executor.
    pub fn drain_where(&mut self, pred: impl Fn(&E) -> bool) -> Vec<Firing<E>> {
        let mut kept = BinaryHeap::with_capacity(self.heap.len());
        let mut out: Vec<Entry<E>> = Vec::new();
        for e in std::mem::take(&mut self.heap).into_vec() {
            if pred(&e.ev) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        self.heap = kept;
        out.sort_by_key(|a| (a.at, a.class, a.tie, a.seq));
        self.stats.drained += out.len() as u64;
        out.into_iter()
            .map(|e| Firing {
                at: e.at,
                id: e.id,
                ev: e.ev,
            })
            .collect()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EventStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_regardless_of_insertion() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(3), "c");
        s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.stats().scheduled, 3);
        assert_eq!(s.stats().executed, 3);
        assert_eq!(s.stats().high_water, 3);
    }

    #[test]
    fn classes_order_same_instant_events() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        let t = SimTime::from_secs(5);
        s.schedule_class(t, EventClass::Normal, "traffic");
        s.schedule_class(t, EventClass::Restart, "restart");
        s.schedule_class(t, EventClass::Crash, "crash");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect();
        assert_eq!(order, vec!["crash", "restart", "traffic"]);
    }

    #[test]
    fn same_instant_ties_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<u32> {
            let mut s: Scheduler<u32> = Scheduler::seeded(seed);
            let t = SimTime::from_secs(1);
            for i in 0..16 {
                s.schedule(t, i);
            }
            std::iter::from_fn(|| s.pop()).map(|f| f.ev).collect()
        };
        assert_eq!(run(7), run(7), "same seed must give the same order");
        assert_ne!(
            run(7),
            run(8),
            "different seeds should shuffle same-instant ties"
        );
    }

    #[test]
    fn pop_due_respects_the_limit() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(1), "early");
        s.schedule(SimTime::from_secs(10), "late");
        assert_eq!(s.pop_due(SimTime::from_secs(5)).unwrap().ev, "early");
        assert!(s.pop_due(SimTime::from_secs(5)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn drain_where_removes_matching_in_order() {
        let mut s: Scheduler<(&str, u32)> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(3), ("brk", 3));
        s.schedule(SimTime::from_secs(1), ("brk", 1));
        s.schedule(SimTime::from_secs(2), ("other", 0));
        let drained = s.drain_where(|e| e.0 == "brk");
        assert_eq!(
            drained.iter().map(|f| f.ev.1).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.stats().drained, 2);
        assert_eq!(s.pop().unwrap().ev.0, "other");
    }

    #[test]
    fn past_scheduling_is_allowed() {
        let mut s: Scheduler<&str> = Scheduler::seeded(1);
        s.schedule(SimTime::from_secs(10), "future");
        // Retry bookkeeping may schedule at an earlier instant.
        s.schedule(SimTime::from_secs(2), "past");
        assert_eq!(s.pop().unwrap().ev, "past");
        assert_eq!(s.pop().unwrap().ev, "future");
    }
}
