//! Causal request tracing over the event calendar.
//!
//! Section 3.6 of the paper names monitoring tools as a recognized
//! missing piece — "required to ease day-to-day operations of the
//! system". Aggregate counters ([`crate::stats`]) answer *how much*; this
//! module answers *why*: every Vice call is assigned a [`TraceId`] when
//! its first `AttemptSend` enters the calendar, and each hop of the event
//! chain (`AttemptSend → RequestArrive → ServiceDispatch → ReplyDepart →
//! ReplyArrive`, racing `TimeoutFire`, plus lifecycle events) deposits a
//! typed [`Span`] into a bounded ring buffer.
//!
//! Tracing is **observation-only** by construction. Nothing in this
//! module draws from a [`crate::SimRng`], schedules a calendar event, or
//! advances a clock: a span records virtual timestamps the simulation
//! already computed. Runs with tracing enabled and disabled are therefore
//! bit-identical in every virtual-time observable — an invariant the
//! golden-timings suite pins.
//!
//! On top of raw spans sits the **anomaly flight recorder**: when the
//! owner detects an anomaly (a call timing out, a volume answering
//! offline, a one-minute utilization peak at or above the configured
//! threshold) it freezes the most recent spans touching the implicated
//! server or volume into an [`AnomalyDump`]. Dumps are retained in order
//! and contain only virtual-time data, so their serialized form is
//! byte-identical across same-seed runs.

use crate::clock::SimTime;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::fmt;

/// Identity of one traced logical call, unique within a collector.
///
/// Ids are minted sequentially starting at 1; 0 is reserved as "untraced"
/// so a frame carrying trace id 0 marks a call issued while tracing was
/// disabled. A collector owned by cluster `c` tags its ids with `c` in the
/// top 16 bits ([`TraceCollector::set_cluster`]), so ids stay globally
/// unique across per-cluster collectors while cluster 0 — and therefore
/// every single-cluster system — keeps the historical 1, 2, 3… sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "not traced" id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id names a real trace.
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What kind of event a span records — one variant per hop of the call
/// chain plus the lifecycle events that share the calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanClass {
    /// The client (re)sent the framed request.
    AttemptSend,
    /// The request reached the server and joined its queue.
    RequestArrive,
    /// The server dequeued and executed the request.
    ServiceDispatch,
    /// The sealed reply left the server.
    ReplyDepart,
    /// The reply reached the client; the call resolved.
    ReplyArrive,
    /// The client's retransmission timer expired.
    TimeoutFire,
    /// The call resolved without a reply (unreachable server or retry
    /// exhaustion).
    CallAbort,
    /// A scheduled server crash fired.
    Crash,
    /// A scheduled server restart fired.
    Restart,
    /// A salvager pass over one volume completed.
    Salvage,
    /// A callback break reached its target workstation.
    BreakDeliver,
    /// A scheduled silent-corruption injection fired against a server's
    /// durable storage.
    Corrupt,
    /// A background scrubber pass over one volume completed.
    Scrub,
}

impl SpanClass {
    /// Stable lower-case label used in serialized dumps.
    pub fn label(self) -> &'static str {
        match self {
            SpanClass::AttemptSend => "attempt_send",
            SpanClass::RequestArrive => "request_arrive",
            SpanClass::ServiceDispatch => "service_dispatch",
            SpanClass::ReplyDepart => "reply_depart",
            SpanClass::ReplyArrive => "reply_arrive",
            SpanClass::TimeoutFire => "timeout_fire",
            SpanClass::CallAbort => "call_abort",
            SpanClass::Crash => "crash",
            SpanClass::Restart => "restart",
            SpanClass::Salvage => "salvage",
            SpanClass::BreakDeliver => "break_deliver",
            SpanClass::Corrupt => "corrupt",
            SpanClass::Scrub => "scrub",
        }
    }
}

impl fmt::Display for SpanClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One hop of one traced call (or one lifecycle event), as recorded by
/// the owning system. All fields are virtual-time observables; a span
/// never stores wall-clock data, so serialized spans are bit-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The logical call this hop belongs to ([`TraceId::NONE`] for
    /// lifecycle events outside any call).
    pub trace: TraceId,
    /// Hop index within the trace (0-based, in recording order).
    pub seq: u32,
    /// What happened.
    pub class: SpanClass,
    /// When it happened, in virtual time.
    pub at: SimTime,
    /// The server involved, if any.
    pub server: Option<u32>,
    /// The client (workstation node) involved, if any.
    pub client: Option<u32>,
    /// The volume involved, if known.
    pub volume: Option<u32>,
    /// Server request-queue depth observed on arrival (before this
    /// request joined the queue).
    pub queue_depth: Option<u32>,
    /// Attempt number of the call (1-based; 0 for lifecycle events).
    pub attempt: u32,
    /// Call kind label ("fetch", "validate", ...), if known at this hop.
    pub kind: Option<&'static str>,
}

/// Why the flight recorder froze a dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyReason {
    /// A call exhausted its retries.
    TimedOut,
    /// A call found its server down.
    Unreachable,
    /// A server answered that the target volume is offline.
    VolumeOffline,
    /// A server answered with another degraded-mode error.
    Degraded,
    /// A resource's one-minute utilization bucket met the peak threshold.
    /// The payload is the utilization in percent, rounded down.
    UtilizationPeak(u8),
    /// Stored bytes failed their digest check (journal trailer or Merkle
    /// leaf) and could not be repaired from a replica.
    IntegrityFault,
}

impl AnomalyReason {
    /// Stable lower-case label used in serialized dumps and file names.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyReason::TimedOut => "timed_out",
            AnomalyReason::Unreachable => "unreachable",
            AnomalyReason::VolumeOffline => "volume_offline",
            AnomalyReason::Degraded => "degraded",
            AnomalyReason::UtilizationPeak(_) => "utilization_peak",
            AnomalyReason::IntegrityFault => "integrity_fault",
        }
    }
}

impl fmt::Display for AnomalyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyReason::UtilizationPeak(pct) => write!(f, "utilization_peak({pct}%)"),
            other => f.write_str(other.label()),
        }
    }
}

/// Which declarative SLO rule fired (the health engine's rule table lives
/// in the core observability layer; the typed events land here, in the
/// flight recorder, next to the anomaly dumps they complement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthRuleKind {
    /// One-minute utilization at or above the threshold percentage for a
    /// window of consecutive buckets.
    SustainedUtilization,
    /// A closed bucket's p99 end-to-end latency above the threshold (µs).
    TailLatency,
    /// Genuine retransmission-timer expiries in one bucket at or above the
    /// threshold count.
    RetryRate,
    /// Integrity verifiers offlined a volume or rejected journal records
    /// this bucket.
    IntegrityBurn,
}

impl HealthRuleKind {
    /// Stable lower-case label used in serialized series exports.
    pub fn label(self) -> &'static str {
        match self {
            HealthRuleKind::SustainedUtilization => "sustained_utilization",
            HealthRuleKind::TailLatency => "tail_latency",
            HealthRuleKind::RetryRate => "retry_rate",
            HealthRuleKind::IntegrityBurn => "integrity_burn",
        }
    }

    /// Compact tag used in dedup keys.
    pub fn tag(self) -> u8 {
        match self {
            HealthRuleKind::SustainedUtilization => 0,
            HealthRuleKind::TailLatency => 1,
            HealthRuleKind::RetryRate => 2,
            HealthRuleKind::IntegrityBurn => 3,
        }
    }
}

impl fmt::Display for HealthRuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One typed SLO/health event emitted by the health engine's windowed
/// burn-rate rules. All fields are virtual-time observables, so recorded
/// events are bit-identical across same-seed runs and across sequential
/// vs. parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// The rule that fired.
    pub rule: HealthRuleKind,
    /// The implicated server.
    pub server: u32,
    /// The implicated volume, when the rule names one.
    pub volume: Option<u32>,
    /// The one-minute bucket whose value breached.
    pub bucket: u64,
    /// Virtual time of the observation that completed the breach window.
    pub at: SimTime,
    /// The measured value (percent, µs, or count, per the rule).
    pub value: u64,
    /// The rule's threshold in the same unit.
    pub threshold: u64,
    /// Consecutive breached buckets the rule required.
    pub window: u32,
}

/// A frozen snapshot of recent spans around one anomaly.
#[derive(Debug, Clone)]
pub struct AnomalyDump {
    /// Sequential dump number (0-based, in detection order).
    pub index: u32,
    /// Why the recorder fired.
    pub reason: AnomalyReason,
    /// Virtual time of detection.
    pub at: SimTime,
    /// The implicated server.
    pub server: Option<u32>,
    /// The implicated volume, if the anomaly names one.
    pub volume: Option<u32>,
    /// The trace that tripped the recorder, if the anomaly is call-bound.
    pub trace: TraceId,
    /// The frozen spans: the most recent ring-buffer entries touching the
    /// implicated server or volume, oldest first.
    pub spans: Vec<Span>,
}

/// Counters describing what the collector has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces minted.
    pub traces: u64,
    /// Spans recorded (including those since evicted from the ring).
    pub spans: u64,
    /// Spans evicted from the ring by capacity.
    pub evicted: u64,
    /// Anomaly dumps frozen.
    pub anomalies: u64,
}

impl TraceStats {
    /// Folds another collector's counters into this one (used to report
    /// totals across per-cluster collectors).
    pub fn merge(&mut self, other: &TraceStats) {
        self.traces += other.traces;
        self.spans += other.spans;
        self.evicted += other.evicted;
        self.anomalies += other.anomalies;
    }
}

/// Default ring-buffer capacity: enough for several hundred calls' worth
/// of hops without letting a long day grow memory without bound.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Default number of spans frozen into one anomaly dump.
pub const DEFAULT_FREEZE_WINDOW: usize = 64;

/// The bounded span ring plus the anomaly flight recorder.
///
/// The collector starts disabled: [`TraceCollector::mint`] returns
/// [`TraceId::NONE`] and [`TraceCollector::record`] is a single branch.
/// That disabled path is the "near-zero cost" configuration — no spans
/// are allocated, no ring is touched.
#[derive(Debug)]
pub struct TraceCollector {
    enabled: bool,
    capacity: usize,
    freeze_window: usize,
    ring: VecDeque<Span>,
    trace_base: u64,
    next_trace: u64,
    next_seq: u32,
    dumps: Vec<AnomalyDump>,
    /// Utilization peaks already reported, as `(server, resource-tag,
    /// bucket-index)` — the recorder fires once per saturated bucket, not
    /// once per call that observes it.
    seen_peaks: HashSet<(u32, u8, u64)>,
    /// Typed SLO events recorded by the health engine, in detection order.
    health: Vec<HealthEvent>,
    /// Health events already recorded, as `(rule-tag, server, bucket)` —
    /// the deterministic dedup the engine's rules rely on.
    seen_health: HashSet<(u8, u32, u64)>,
    stats: TraceStats,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// Creates a disabled collector with default bounds.
    pub fn new() -> TraceCollector {
        TraceCollector::with_bounds(DEFAULT_SPAN_CAPACITY, DEFAULT_FREEZE_WINDOW)
    }

    /// Creates a disabled collector with explicit ring capacity and
    /// freeze-window size.
    pub fn with_bounds(capacity: usize, freeze_window: usize) -> TraceCollector {
        assert!(capacity > 0, "span ring needs capacity");
        assert!(
            freeze_window > 0,
            "freeze window must hold at least one span"
        );
        TraceCollector {
            enabled: false,
            capacity,
            freeze_window,
            ring: VecDeque::new(),
            trace_base: 0,
            next_trace: 0,
            next_seq: 0,
            dumps: Vec::new(),
            seen_peaks: HashSet::new(),
            health: Vec::new(),
            seen_health: HashSet::new(),
            stats: TraceStats::default(),
        }
    }

    /// Turns recording on or off. Disabling does not clear existing spans
    /// or dumps.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the collector is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks this collector as cluster `cluster`'s: subsequently minted
    /// ids carry the cluster in their top 16 bits. Cluster 0 (the only
    /// cluster of a single-cluster system) mints unchanged ids.
    pub fn set_cluster(&mut self, cluster: u32) {
        self.trace_base = u64::from(cluster) << 48;
    }

    /// Mints the next [`TraceId`], or [`TraceId::NONE`] when disabled.
    pub fn mint(&mut self) -> TraceId {
        if !self.enabled {
            return TraceId::NONE;
        }
        self.next_trace += 1;
        self.next_seq = 0;
        self.stats.traces += 1;
        TraceId(self.trace_base | self.next_trace)
    }

    /// The next hop index for the current trace.
    pub fn next_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Records one span into the ring, evicting the oldest beyond
    /// capacity. A no-op while disabled.
    pub fn record(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.stats.evicted += 1;
        }
        self.ring.push_back(span);
        self.stats.spans += 1;
    }

    /// The spans currently resident in the ring, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// The resident spans of one trace, oldest first.
    pub fn spans_of(&self, trace: TraceId) -> Vec<&Span> {
        self.ring.iter().filter(|s| s.trace == trace).collect()
    }

    /// Freezes the most recent `freeze_window` resident spans touching
    /// `server` or `volume` (or belonging to `trace`) into an anomaly
    /// dump. A no-op while disabled.
    pub fn freeze(
        &mut self,
        reason: AnomalyReason,
        at: SimTime,
        server: Option<u32>,
        volume: Option<u32>,
        trace: TraceId,
    ) {
        if !self.enabled {
            return;
        }
        let mut picked: Vec<Span> = self
            .ring
            .iter()
            .rev()
            .filter(|s| {
                (server.is_some() && s.server == server)
                    || (volume.is_some() && s.volume == volume)
                    || (trace.is_traced() && s.trace == trace)
            })
            .take(self.freeze_window)
            .cloned()
            .collect();
        picked.reverse();
        let index = self.dumps.len() as u32;
        self.dumps.push(AnomalyDump {
            index,
            reason,
            at,
            server,
            volume,
            trace,
            spans: picked,
        });
        self.stats.anomalies += 1;
    }

    /// Reports a one-minute utilization peak for `(server, resource_tag)`
    /// at `at`, freezing a dump the first time each saturated bucket is
    /// seen. `resource_tag` distinguishes the server's resources (0 = CPU,
    /// 1 = disk); `bucket` is the saturated bucket's index.
    pub fn report_peak(
        &mut self,
        server: u32,
        resource_tag: u8,
        bucket: u64,
        percent: u8,
        at: SimTime,
    ) {
        if !self.enabled || !self.seen_peaks.insert((server, resource_tag, bucket)) {
            return;
        }
        // One sustained saturation episode can span a bucket edge: the
        // reply-depart probe examines both the current and the previous
        // bucket, so adjacent saturated buckets are one episode continuing,
        // not a new peak. The key is still inserted above, which lets a
        // long episode extend bucket by bucket while freezing only once; a
        // gap of at least one unsaturated bucket starts a fresh episode.
        if bucket > 0
            && self
                .seen_peaks
                .contains(&(server, resource_tag, bucket - 1))
        {
            return;
        }
        self.freeze(
            AnomalyReason::UtilizationPeak(percent),
            at,
            Some(server),
            None,
            TraceId::NONE,
        );
    }

    /// Records one typed health event, deduplicated on `(rule, server,
    /// bucket)` so a rule fires once per breached bucket no matter how
    /// many observations re-confirm it. Returns whether the event was
    /// kept. A no-op while disabled.
    pub fn record_health(&mut self, ev: HealthEvent) -> bool {
        if !self.enabled
            || !self
                .seen_health
                .insert((ev.rule.tag(), ev.server, ev.bucket))
        {
            return false;
        }
        self.health.push(ev);
        true
    }

    /// The recorded health events, in detection order.
    pub fn health_events(&self) -> &[HealthEvent] {
        &self.health
    }

    /// The frozen anomaly dumps, in detection order.
    pub fn dumps(&self) -> &[AnomalyDump] {
        &self.dumps
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, seq: u32, class: SpanClass, server: u32) -> Span {
        Span {
            trace: TraceId(trace),
            seq,
            class,
            at: SimTime::from_millis(u64::from(seq)),
            server: Some(server),
            client: Some(9),
            volume: None,
            queue_depth: None,
            attempt: 1,
            kind: Some("fetch"),
        }
    }

    #[test]
    fn disabled_collector_mints_none_and_records_nothing() {
        let mut c = TraceCollector::new();
        assert_eq!(c.mint(), TraceId::NONE);
        c.record(span(1, 0, SpanClass::AttemptSend, 0));
        c.freeze(
            AnomalyReason::TimedOut,
            SimTime::ZERO,
            Some(0),
            None,
            TraceId(1),
        );
        assert_eq!(c.spans().count(), 0);
        assert!(c.dumps().is_empty());
        assert_eq!(c.stats(), TraceStats::default());
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let mut c = TraceCollector::with_bounds(3, 2);
        c.set_enabled(true);
        for i in 0..5 {
            c.record(span(1, i, SpanClass::AttemptSend, 0));
        }
        let seqs: Vec<u32> = c.spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(c.stats().spans, 5);
        assert_eq!(c.stats().evicted, 2);
    }

    #[test]
    fn freeze_picks_spans_touching_the_implicated_server() {
        let mut c = TraceCollector::with_bounds(16, 8);
        c.set_enabled(true);
        c.record(span(1, 0, SpanClass::AttemptSend, 0));
        c.record(span(2, 0, SpanClass::AttemptSend, 1));
        c.record(span(2, 1, SpanClass::TimeoutFire, 1));
        c.freeze(
            AnomalyReason::TimedOut,
            SimTime::from_secs(1),
            Some(1),
            None,
            TraceId(2),
        );
        let d = &c.dumps()[0];
        assert_eq!(d.reason, AnomalyReason::TimedOut);
        assert_eq!(d.spans.len(), 2);
        assert!(d.spans.iter().all(|s| s.server == Some(1)));
        // Oldest first.
        assert!(d.spans[0].seq < d.spans[1].seq);
    }

    #[test]
    fn peak_reports_fire_once_per_episode() {
        let mut c = TraceCollector::new();
        c.set_enabled(true);
        c.record(span(1, 0, SpanClass::ServiceDispatch, 0));
        // Re-observations of the same bucket and the adjacent bucket of the
        // same episode stay silent; only the episode's first bucket fires.
        c.report_peak(0, 1, 7, 99, SimTime::from_mins(7));
        c.report_peak(0, 1, 7, 99, SimTime::from_mins(7));
        c.report_peak(0, 1, 8, 100, SimTime::from_mins(8));
        assert_eq!(c.dumps().len(), 1);
        assert_eq!(
            c.dumps()[0].reason,
            AnomalyReason::UtilizationPeak(99),
            "percent rides the reason"
        );
    }

    #[test]
    fn peak_spanning_a_bucket_edge_reports_once_but_a_gap_restarts() {
        let mut c = TraceCollector::new();
        c.set_enabled(true);
        c.record(span(1, 0, SpanClass::ServiceDispatch, 0));
        // A three-bucket episode: each continuation bucket is suppressed
        // even though the middle report arrives via the previous-bucket
        // probe of a later call.
        c.report_peak(0, 0, 3, 98, SimTime::from_mins(3));
        c.report_peak(0, 0, 4, 99, SimTime::from_mins(4));
        c.report_peak(0, 0, 5, 100, SimTime::from_mins(5));
        assert_eq!(c.dumps().len(), 1, "one episode, one dump");
        // Bucket 7 is separated by an unsaturated bucket 6: new episode.
        c.report_peak(0, 0, 7, 99, SimTime::from_mins(7));
        assert_eq!(c.dumps().len(), 2, "a gap starts a fresh episode");
        // Other servers and the other resource are independent episodes.
        c.report_peak(1, 0, 4, 99, SimTime::from_mins(4));
        c.report_peak(0, 1, 4, 99, SimTime::from_mins(4));
        assert_eq!(c.dumps().len(), 4);
    }

    #[test]
    fn health_events_dedup_per_rule_server_bucket() {
        let mut c = TraceCollector::new();
        let ev = HealthEvent {
            rule: HealthRuleKind::RetryRate,
            server: 2,
            volume: None,
            bucket: 5,
            at: SimTime::from_mins(5),
            value: 3,
            threshold: 2,
            window: 1,
        };
        assert!(!c.record_health(ev), "disabled collector records nothing");
        c.set_enabled(true);
        assert!(c.record_health(ev));
        assert!(!c.record_health(ev), "same rule+server+bucket dedups");
        assert!(c.record_health(HealthEvent {
            rule: HealthRuleKind::TailLatency,
            ..ev
        }));
        assert!(c.record_health(HealthEvent { bucket: 6, ..ev }));
        assert_eq!(c.health_events().len(), 3);
        assert_eq!(c.health_events()[0].rule, HealthRuleKind::RetryRate);
    }

    #[test]
    fn mint_resets_hop_sequence() {
        let mut c = TraceCollector::new();
        c.set_enabled(true);
        let t1 = c.mint();
        assert_eq!(t1, TraceId(1));
        assert_eq!(c.next_seq(), 0);
        assert_eq!(c.next_seq(), 1);
        let t2 = c.mint();
        assert_eq!(t2, TraceId(2));
        assert_eq!(c.next_seq(), 0);
        assert!(t2.is_traced() && !TraceId::NONE.is_traced());
    }
}
