//! Deterministic fault injection.
//!
//! The 1985 paper's prototype ran on a real campus network where messages
//! were lost, servers crashed, and Venus had to keep workstations usable
//! anyway (Section 3.1: *"A user could, if he so desired, continue work in
//! the presence of... failures"*). This module gives the simulation the same
//! adversities on demand, driven entirely by a seeded [`SimRng`] so that a
//! given fault plan produces bit-identical failures — and therefore
//! bit-identical retries, failovers, and recoveries — on every run.
//!
//! A [`FaultPlan`] answers two kinds of question for the transport layer:
//!
//! * **Message faults** — should this request or reply be dropped,
//!   duplicated, or delayed? Decided probabilistically per message, or
//!   scripted precisely via [`FaultPlan::inject_once`] (the FIFO of one-shot
//!   faults is what the fault tests use to stage exact scenarios like "the
//!   reply to the *next* Store to server 1 is lost").
//! * **Server lifecycle** — has a crash or restart been scheduled at or
//!   before the current virtual time? The *owner* of the servers polls
//!   [`FaultPlan::due_crashes`] / [`FaultPlan::due_restarts`] and applies
//!   the state changes; crashing a simulated Vice server loses its
//!   in-memory state (callback promises, replay cache, locks) exactly as a
//!   reboot of the real machine would.
//!
//! The plan also keeps [`FaultStats`] so tests can assert exactly how many
//! faults fired.

use crate::clock::SimTime;
use crate::rng::SimRng;
use std::collections::VecDeque;

/// What the (simulated) network did to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Delivered normally.
    Deliver,
    /// Lost in transit; the caller sees only its timeout.
    Drop,
    /// Delivered twice (meaningful for replies: the client sees the same
    /// sealed reply again, which the channel layer must reject).
    Duplicate,
    /// Delivered after an extra delay.
    Delay(SimTime),
}

/// A one-shot fault staged against a specific server's next message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedFault {
    /// Drop the next request sent to the server.
    DropRequest,
    /// Drop the next reply the server sends.
    DropReply,
    /// Duplicate the next reply the server sends.
    DuplicateReply,
    /// Delay the next reply by the given amount.
    DelayReply(SimTime),
}

/// Counters of faults actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests lost before reaching a server.
    pub requests_dropped: u64,
    /// Replies lost on the way back.
    pub replies_dropped: u64,
    /// Replies delivered twice.
    pub replies_duplicated: u64,
    /// Messages delivered late.
    pub delays_injected: u64,
}

impl FaultStats {
    /// Total message faults of any kind.
    pub fn total(&self) -> u64 {
        self.requests_dropped
            + self.replies_dropped
            + self.replies_duplicated
            + self.delays_injected
    }
}

/// A deterministic plan of message faults and server crashes.
///
/// Lifecycle schedules are kept sorted by `(at, server)` so the due-event
/// queries drain from the front instead of rescanning (and re-sorting) the
/// whole history on every poll.
#[derive(Debug)]
pub struct FaultPlan {
    rng: SimRng,
    drop_request: f64,
    drop_reply: f64,
    duplicate_reply: f64,
    delay_prob: f64,
    delay_extra: SimTime,
    scripted: Vec<(u32, VecDeque<ScriptedFault>)>,
    crashes: VecDeque<(SimTime, u32)>,
    restarts: VecDeque<(SimTime, u32)>,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan with no probabilistic faults; scenarios are added with the
    /// builder methods and [`FaultPlan::inject_once`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: SimRng::seeded(seed),
            drop_request: 0.0,
            drop_reply: 0.0,
            duplicate_reply: 0.0,
            delay_prob: 0.0,
            delay_extra: SimTime::ZERO,
            scripted: Vec::new(),
            crashes: VecDeque::new(),
            restarts: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the probability that any request is lost in transit.
    pub fn drop_request_prob(mut self, p: f64) -> Self {
        self.drop_request = p;
        self
    }

    /// Sets the probability that any reply is lost in transit.
    pub fn drop_reply_prob(mut self, p: f64) -> Self {
        self.drop_reply = p;
        self
    }

    /// Sets the probability that any reply is delivered twice.
    pub fn duplicate_reply_prob(mut self, p: f64) -> Self {
        self.duplicate_reply = p;
        self
    }

    /// Sets the probability that a message is delayed, and by how much.
    pub fn delay(mut self, p: f64, extra: SimTime) -> Self {
        self.delay_prob = p;
        self.delay_extra = extra;
        self
    }

    /// Stages a one-shot fault against `server`. Faults staged against the
    /// same server fire in FIFO order, one per matching message.
    pub fn inject_once(&mut self, server: u32, fault: ScriptedFault) {
        if let Some((_, q)) = self.scripted.iter_mut().find(|(s, _)| *s == server) {
            q.push_back(fault);
        } else {
            let mut q = VecDeque::new();
            q.push_back(fault);
            self.scripted.push((server, q));
        }
    }

    /// Schedules `server` to crash at virtual time `at`, losing all
    /// in-memory state (the owner applies the crash via [`Self::due_crashes`]).
    pub fn schedule_crash(&mut self, server: u32, at: SimTime) {
        Self::insert_sorted(&mut self.crashes, server, at);
    }

    /// Schedules `server` to come back up at virtual time `at`.
    pub fn schedule_restart(&mut self, server: u32, at: SimTime) {
        Self::insert_sorted(&mut self.restarts, server, at);
    }

    /// Crash events due at or before `now`, drained from the schedule.
    pub fn due_crashes(&mut self, now: SimTime) -> Vec<u32> {
        Self::drain_due(&mut self.crashes, now)
    }

    /// Restart events due at or before `now`, drained from the schedule.
    pub fn due_restarts(&mut self, now: SimTime) -> Vec<u32> {
        Self::drain_due(&mut self.restarts, now)
    }

    /// Every crash still scheduled, as `(server, at)` pairs in firing
    /// order. An event-driven owner reads the whole schedule once at
    /// installation and enters it into its own calendar instead of polling
    /// [`Self::due_crashes`].
    pub fn crash_schedule(&self) -> Vec<(u32, SimTime)> {
        self.crashes.iter().map(|&(at, s)| (s, at)).collect()
    }

    /// Every restart still scheduled, as `(server, at)` pairs in firing
    /// order.
    pub fn restart_schedule(&self) -> Vec<(u32, SimTime)> {
        self.restarts.iter().map(|&(at, s)| (s, at)).collect()
    }

    /// Keeps a schedule sorted by `(at, server)` on insertion, so the due
    /// queries can pop from the front.
    fn insert_sorted(events: &mut VecDeque<(SimTime, u32)>, server: u32, at: SimTime) {
        let pos = events.partition_point(|&e| e <= (at, server));
        events.insert(pos, (at, server));
    }

    fn drain_due(events: &mut VecDeque<(SimTime, u32)>, now: SimTime) -> Vec<u32> {
        let mut due = Vec::new();
        while let Some(&(at, server)) = events.front() {
            if at > now {
                break;
            }
            events.pop_front();
            due.push(server);
        }
        due
    }

    /// How many bytes of a crashed server's `unsynced` journal window made
    /// it to the platter before power failed — the torn-write point, drawn
    /// uniformly from `0..=unsynced` off the plan's seeded stream. With
    /// nothing unsynced the answer is 0 and **no random draw is made**, so
    /// write-ahead-synced runs consume exactly the same rng stream as
    /// before the disk model existed.
    pub fn torn_bytes(&mut self, unsynced: u64) -> u64 {
        if unsynced == 0 {
            return 0;
        }
        self.rng.range(0, unsynced + 1)
    }

    fn pop_scripted(
        &mut self,
        server: u32,
        matches: impl Fn(ScriptedFault) -> bool,
    ) -> Option<ScriptedFault> {
        let (_, q) = self.scripted.iter_mut().find(|(s, _)| *s == server)?;
        match q.front() {
            Some(&f) if matches(f) => q.pop_front(),
            _ => None,
        }
    }

    /// Decides the fate of a request headed for `server`.
    pub fn request_fault(&mut self, server: u32) -> MessageFault {
        if let Some(f) = self.pop_scripted(server, |f| matches!(f, ScriptedFault::DropRequest)) {
            debug_assert_eq!(f, ScriptedFault::DropRequest);
            self.stats.requests_dropped += 1;
            return MessageFault::Drop;
        }
        if self.drop_request > 0.0 && self.rng.chance(self.drop_request) {
            self.stats.requests_dropped += 1;
            return MessageFault::Drop;
        }
        if self.delay_prob > 0.0 && self.rng.chance(self.delay_prob) {
            self.stats.delays_injected += 1;
            return MessageFault::Delay(self.delay_extra);
        }
        MessageFault::Deliver
    }

    /// Decides the fate of a reply sent by `server`.
    pub fn reply_fault(&mut self, server: u32) -> MessageFault {
        if let Some(f) = self.pop_scripted(server, |f| {
            matches!(
                f,
                ScriptedFault::DropReply
                    | ScriptedFault::DuplicateReply
                    | ScriptedFault::DelayReply(_)
            )
        }) {
            return match f {
                ScriptedFault::DropReply => {
                    self.stats.replies_dropped += 1;
                    MessageFault::Drop
                }
                ScriptedFault::DuplicateReply => {
                    self.stats.replies_duplicated += 1;
                    MessageFault::Duplicate
                }
                ScriptedFault::DelayReply(extra) => {
                    self.stats.delays_injected += 1;
                    MessageFault::Delay(extra)
                }
                ScriptedFault::DropRequest => unreachable!("filtered by matcher"),
            };
        }
        if self.drop_reply > 0.0 && self.rng.chance(self.drop_reply) {
            self.stats.replies_dropped += 1;
            return MessageFault::Drop;
        }
        if self.duplicate_reply > 0.0 && self.rng.chance(self.duplicate_reply) {
            self.stats.replies_duplicated += 1;
            return MessageFault::Duplicate;
        }
        if self.delay_prob > 0.0 && self.rng.chance(self.delay_prob) {
            self.stats.delays_injected += 1;
            return MessageFault::Delay(self.delay_extra);
        }
        MessageFault::Deliver
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The jitter source for retry backoff, forked from the plan's own
    /// seeded stream so transport retries stay deterministic per plan.
    pub fn fork_rng(&mut self) -> SimRng {
        self.rng.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_faults() {
        let mut p = FaultPlan::new(7);
        for _ in 0..100 {
            assert_eq!(p.request_fault(0), MessageFault::Deliver);
            assert_eq!(p.reply_fault(0), MessageFault::Deliver);
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn scripted_faults_fire_once_in_fifo_order() {
        let mut p = FaultPlan::new(7);
        p.inject_once(1, ScriptedFault::DropReply);
        p.inject_once(1, ScriptedFault::DuplicateReply);
        // Other servers are unaffected.
        assert_eq!(p.reply_fault(0), MessageFault::Deliver);
        assert_eq!(p.reply_fault(1), MessageFault::Drop);
        assert_eq!(p.reply_fault(1), MessageFault::Duplicate);
        assert_eq!(p.reply_fault(1), MessageFault::Deliver);
        assert_eq!(p.stats().replies_dropped, 1);
        assert_eq!(p.stats().replies_duplicated, 1);
    }

    #[test]
    fn scripted_request_and_reply_queues_interleave() {
        // A DropRequest at the queue head must not be consumed by a reply
        // fault query, and vice versa.
        let mut p = FaultPlan::new(7);
        p.inject_once(2, ScriptedFault::DropRequest);
        assert_eq!(p.reply_fault(2), MessageFault::Deliver);
        assert_eq!(p.request_fault(2), MessageFault::Drop);
        assert_eq!(p.request_fault(2), MessageFault::Deliver);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let run = |seed: u64| -> (Vec<MessageFault>, FaultStats) {
            let mut p = FaultPlan::new(seed)
                .drop_request_prob(0.2)
                .drop_reply_prob(0.1)
                .duplicate_reply_prob(0.1);
            let mut seq = Vec::new();
            for i in 0..200 {
                seq.push(p.request_fault(i % 3));
                seq.push(p.reply_fault(i % 3));
            }
            (seq, p.stats())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.requests_dropped > 0 && sa.replies_dropped > 0);
        let (c, _) = run(43);
        assert_ne!(a, c);
    }

    #[test]
    fn lifecycle_events_fire_once_in_time_order() {
        let mut p = FaultPlan::new(1);
        p.schedule_crash(2, SimTime::from_secs(50));
        p.schedule_crash(1, SimTime::from_secs(10));
        p.schedule_restart(1, SimTime::from_secs(60));
        assert!(p.due_crashes(SimTime::from_secs(5)).is_empty());
        assert_eq!(p.due_crashes(SimTime::from_secs(55)), vec![1, 2]);
        assert!(p.due_crashes(SimTime::from_secs(100)).is_empty());
        assert!(p.due_restarts(SimTime::from_secs(59)).is_empty());
        assert_eq!(p.due_restarts(SimTime::from_secs(60)), vec![1]);
        assert!(p.due_restarts(SimTime::from_secs(61)).is_empty());
    }

    #[test]
    fn schedules_stay_sorted_and_drain_from_the_front() {
        let mut p = FaultPlan::new(1);
        // Inserted out of order, including a same-instant pair: the
        // schedule reads back sorted by (at, server) without a sort call.
        p.schedule_crash(5, SimTime::from_secs(30));
        p.schedule_crash(9, SimTime::from_secs(10));
        p.schedule_crash(3, SimTime::from_secs(10));
        p.schedule_crash(1, SimTime::from_secs(20));
        assert_eq!(
            p.crash_schedule(),
            vec![
                (3, SimTime::from_secs(10)),
                (9, SimTime::from_secs(10)),
                (1, SimTime::from_secs(20)),
                (5, SimTime::from_secs(30)),
            ]
        );
        // Partial drain takes only the due prefix; the rest stays queued.
        assert_eq!(p.due_crashes(SimTime::from_secs(15)), vec![3, 9]);
        assert_eq!(
            p.crash_schedule(),
            vec![(1, SimTime::from_secs(20)), (5, SimTime::from_secs(30))]
        );
        assert_eq!(p.due_crashes(SimTime::from_secs(100)), vec![1, 5]);
        assert!(p.crash_schedule().is_empty());
    }

    #[test]
    fn torn_bytes_is_bounded_and_quiet_when_synced() {
        let mut p = FaultPlan::new(11);
        // With nothing unsynced, no draw happens: the stream is untouched,
        // so a subsequent draw matches a fresh plan's first draw.
        assert_eq!(p.torn_bytes(0), 0);
        let a = p.torn_bytes(1000);
        let b = FaultPlan::new(11).torn_bytes(1000);
        assert_eq!(a, b);
        assert!(a <= 1000);
        // The draw covers the full inclusive range deterministically.
        let mut p = FaultPlan::new(11);
        let draws: Vec<u64> = (0..200).map(|_| p.torn_bytes(3)).collect();
        assert!(draws.iter().all(|&d| d <= 3));
        assert!(draws.contains(&0) && draws.contains(&3));
    }

    #[test]
    fn delay_faults_carry_the_extra_time() {
        let mut p = FaultPlan::new(3).delay(1.0, SimTime::from_millis(250));
        assert_eq!(
            p.request_fault(0),
            MessageFault::Delay(SimTime::from_millis(250))
        );
        assert_eq!(p.stats().delays_injected, 1);
    }
}
