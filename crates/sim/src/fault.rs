//! Deterministic fault injection.
//!
//! The 1985 paper's prototype ran on a real campus network where messages
//! were lost, servers crashed, and Venus had to keep workstations usable
//! anyway (Section 3.1: *"A user could, if he so desired, continue work in
//! the presence of... failures"*). This module gives the simulation the same
//! adversities on demand, driven entirely by a seeded [`SimRng`] so that a
//! given fault plan produces bit-identical failures — and therefore
//! bit-identical retries, failovers, and recoveries — on every run.
//!
//! A [`FaultPlan`] answers two kinds of question for the transport layer:
//!
//! * **Message faults** — should this request or reply be dropped,
//!   duplicated, or delayed? Decided probabilistically per message, or
//!   scripted precisely via [`FaultPlan::inject_once`] (the FIFO of one-shot
//!   faults is what the fault tests use to stage exact scenarios like "the
//!   reply to the *next* Store to server 1 is lost").
//! * **Server lifecycle** — has a crash or restart been scheduled at or
//!   before the current virtual time? The *owner* of the servers polls
//!   [`FaultPlan::due_crashes`] / [`FaultPlan::due_restarts`] and applies
//!   the state changes; crashing a simulated Vice server loses its
//!   in-memory state (callback promises, replay cache, locks) exactly as a
//!   reboot of the real machine would.
//!
//! The plan also keeps [`FaultStats`] so tests can assert exactly how many
//! faults fired.

use crate::clock::SimTime;
use crate::rng::SimRng;
use std::collections::VecDeque;

/// What the (simulated) network did to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFault {
    /// Delivered normally.
    Deliver,
    /// Lost in transit; the caller sees only its timeout.
    Drop,
    /// Delivered twice (meaningful for replies: the client sees the same
    /// sealed reply again, which the channel layer must reject).
    Duplicate,
    /// Delivered after an extra delay.
    Delay(SimTime),
}

/// A one-shot fault staged against a specific server's next message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedFault {
    /// Drop the next request sent to the server.
    DropRequest,
    /// Drop the next reply the server sends.
    DropReply,
    /// Duplicate the next reply the server sends.
    DuplicateReply,
    /// Delay the next reply by the given amount.
    DelayReply(SimTime),
}

/// Counters of faults actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests lost before reaching a server.
    pub requests_dropped: u64,
    /// Replies lost on the way back.
    pub replies_dropped: u64,
    /// Replies delivered twice.
    pub replies_duplicated: u64,
    /// Messages delivered late.
    pub delays_injected: u64,
    /// Silent byte-flips injected into durable storage.
    pub corruptions_injected: u64,
}

impl FaultStats {
    /// Total message faults of any kind.
    pub fn total(&self) -> u64 {
        self.requests_dropped
            + self.replies_dropped
            + self.replies_duplicated
            + self.delays_injected
    }

    /// Folds another shard's counters into this one (used to report totals
    /// across per-cluster fault streams).
    pub fn merge(&mut self, other: &FaultStats) {
        self.requests_dropped += other.requests_dropped;
        self.replies_dropped += other.replies_dropped;
        self.replies_duplicated += other.replies_duplicated;
        self.delays_injected += other.delays_injected;
        self.corruptions_injected += other.corruptions_injected;
    }
}

/// A deterministic plan of message faults and server crashes.
///
/// Lifecycle schedules are kept sorted by `(at, server)` so the due-event
/// queries drain from the front instead of rescanning (and re-sorting) the
/// whole history on every poll.
#[derive(Debug)]
pub struct FaultPlan {
    rng: SimRng,
    seed: u64,
    drop_request: f64,
    drop_reply: f64,
    duplicate_reply: f64,
    delay_prob: f64,
    delay_extra: SimTime,
    scripted: Vec<(u32, VecDeque<ScriptedFault>)>,
    crashes: VecDeque<(SimTime, u32)>,
    restarts: VecDeque<(SimTime, u32)>,
    corruptions: VecDeque<(SimTime, u32)>,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan with no probabilistic faults; scenarios are added with the
    /// builder methods and [`FaultPlan::inject_once`].
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: SimRng::seeded(seed),
            seed,
            drop_request: 0.0,
            drop_reply: 0.0,
            duplicate_reply: 0.0,
            delay_prob: 0.0,
            delay_extra: SimTime::ZERO,
            scripted: Vec::new(),
            crashes: VecDeque::new(),
            restarts: VecDeque::new(),
            corruptions: VecDeque::new(),
            stats: FaultStats::default(),
        }
    }

    /// Sets the probability that any request is lost in transit.
    pub fn drop_request_prob(mut self, p: f64) -> Self {
        self.drop_request = p;
        self
    }

    /// Sets the probability that any reply is lost in transit.
    pub fn drop_reply_prob(mut self, p: f64) -> Self {
        self.drop_reply = p;
        self
    }

    /// Sets the probability that any reply is delivered twice.
    pub fn duplicate_reply_prob(mut self, p: f64) -> Self {
        self.duplicate_reply = p;
        self
    }

    /// Sets the probability that a message is delayed, and by how much.
    pub fn delay(mut self, p: f64, extra: SimTime) -> Self {
        self.delay_prob = p;
        self.delay_extra = extra;
        self
    }

    /// Stages a one-shot fault against `server`. Faults staged against the
    /// same server fire in FIFO order, one per matching message.
    pub fn inject_once(&mut self, server: u32, fault: ScriptedFault) {
        if let Some((_, q)) = self.scripted.iter_mut().find(|(s, _)| *s == server) {
            q.push_back(fault);
        } else {
            let mut q = VecDeque::new();
            q.push_back(fault);
            self.scripted.push((server, q));
        }
    }

    /// Schedules `server` to crash at virtual time `at`, losing all
    /// in-memory state (the owner applies the crash via [`Self::due_crashes`]).
    pub fn schedule_crash(&mut self, server: u32, at: SimTime) {
        Self::insert_sorted(&mut self.crashes, server, at);
    }

    /// Schedules `server` to come back up at virtual time `at`.
    pub fn schedule_restart(&mut self, server: u32, at: SimTime) {
        Self::insert_sorted(&mut self.restarts, server, at);
    }

    /// Schedules a silent byte-flip against `server`'s durable storage at
    /// virtual time `at`. When the event fires, the owner calls
    /// [`FaultPlan::flip_bytes`] with the extent of the server's durable
    /// address space to pick the damaged byte.
    pub fn schedule_corruption(&mut self, server: u32, at: SimTime) {
        Self::insert_sorted(&mut self.corruptions, server, at);
    }

    /// Crash events due at or before `now`, drained from the schedule.
    pub fn due_crashes(&mut self, now: SimTime) -> Vec<u32> {
        Self::drain_due(&mut self.crashes, now)
    }

    /// Restart events due at or before `now`, drained from the schedule.
    pub fn due_restarts(&mut self, now: SimTime) -> Vec<u32> {
        Self::drain_due(&mut self.restarts, now)
    }

    /// Every crash still scheduled, as `(server, at)` pairs in firing
    /// order. An event-driven owner reads the whole schedule once at
    /// installation and enters it into its own calendar instead of polling
    /// [`Self::due_crashes`].
    pub fn crash_schedule(&self) -> Vec<(u32, SimTime)> {
        self.crashes.iter().map(|&(at, s)| (s, at)).collect()
    }

    /// Every restart still scheduled, as `(server, at)` pairs in firing
    /// order.
    pub fn restart_schedule(&self) -> Vec<(u32, SimTime)> {
        self.restarts.iter().map(|&(at, s)| (s, at)).collect()
    }

    /// Every corruption injection still scheduled, as `(server, at)` pairs
    /// in firing order.
    pub fn corruption_schedule(&self) -> Vec<(u32, SimTime)> {
        self.corruptions.iter().map(|&(at, s)| (s, at)).collect()
    }

    /// Keeps a schedule sorted by `(at, server)` on insertion, so the due
    /// queries can pop from the front.
    fn insert_sorted(events: &mut VecDeque<(SimTime, u32)>, server: u32, at: SimTime) {
        let pos = events.partition_point(|&e| e <= (at, server));
        events.insert(pos, (at, server));
    }

    fn drain_due(events: &mut VecDeque<(SimTime, u32)>, now: SimTime) -> Vec<u32> {
        let mut due = Vec::new();
        while let Some(&(at, server)) = events.front() {
            if at > now {
                break;
            }
            events.pop_front();
            due.push(server);
        }
        due
    }

    /// Whether the plan schedules any server crash. A crash bumps the
    /// victim's epoch, which can invalidate cached state far from the
    /// victim's own cluster, so parallel executors treat crash-bearing
    /// plans as globally coupling.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// Whether the plan schedules any silent corruption. Unlike crashes,
    /// corruption events touch only the victim server's own durable state
    /// and calendar, so a pure-corruption plan does **not** globally couple
    /// a parallel run.
    pub fn has_corruptions(&self) -> bool {
        !self.corruptions.is_empty()
    }

    /// Whether the plan carries any fault that couples clusters beyond the
    /// victim's own: message-fault probabilities, scripted message faults,
    /// or crash/restart schedules. Corruption-only plans return `false`,
    /// which is what lets parallel executors keep per-cluster masks narrow
    /// while an integrity fault plan is installed.
    pub fn couples_clusters(&self) -> bool {
        self.drop_request > 0.0
            || self.drop_reply > 0.0
            || self.duplicate_reply > 0.0
            || self.delay_prob > 0.0
            || !self.scripted.is_empty()
            || !self.crashes.is_empty()
            || !self.restarts.is_empty()
    }

    /// Splits the plan into one independent sub-plan per shard (cluster),
    /// assigning each scripted fault and each lifecycle event to
    /// `shard_of(server)`'s sub-plan and giving every shard its own
    /// probabilistic rng stream derived from the plan seed.
    ///
    /// Shard 0's stream is seeded exactly like the undivided plan's, so a
    /// single-cluster system draws the very same fault sequence whether or
    /// not it was split — the seed-identity rule the pinned goldens rely
    /// on. Draw order within a shard depends only on that shard's own
    /// message traffic, which is what makes fault decisions independent of
    /// how clusters interleave (the partition-independence requirement of
    /// the parallel executor).
    pub fn split(self, shards: usize, shard_of: impl Fn(u32) -> usize) -> Vec<FaultPlan> {
        let mut out: Vec<FaultPlan> = (0..shards)
            .map(|c| {
                let derived = self
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64));
                FaultPlan {
                    rng: SimRng::seeded(derived),
                    seed: derived,
                    drop_request: self.drop_request,
                    drop_reply: self.drop_reply,
                    duplicate_reply: self.duplicate_reply,
                    delay_prob: self.delay_prob,
                    delay_extra: self.delay_extra,
                    scripted: Vec::new(),
                    crashes: VecDeque::new(),
                    restarts: VecDeque::new(),
                    corruptions: VecDeque::new(),
                    stats: FaultStats::default(),
                }
            })
            .collect();
        for (server, q) in self.scripted {
            out[shard_of(server).min(shards - 1)]
                .scripted
                .push((server, q));
        }
        for (at, server) in self.crashes {
            out[shard_of(server).min(shards - 1)]
                .crashes
                .push_back((at, server));
        }
        for (at, server) in self.restarts {
            out[shard_of(server).min(shards - 1)]
                .restarts
                .push_back((at, server));
        }
        for (at, server) in self.corruptions {
            out[shard_of(server).min(shards - 1)]
                .corruptions
                .push_back((at, server));
        }
        out
    }

    /// How many bytes of a crashed server's `unsynced` journal window made
    /// it to the platter before power failed — the torn-write point, drawn
    /// uniformly from `0..=unsynced` off the plan's seeded stream. With
    /// nothing unsynced the answer is 0 and **no random draw is made**, so
    /// write-ahead-synced runs consume exactly the same rng stream as
    /// before the disk model existed.
    pub fn torn_bytes(&mut self, unsynced: u64) -> u64 {
        if unsynced == 0 {
            return 0;
        }
        self.rng.range(0, unsynced + 1)
    }

    /// Picks the silent-corruption target for a durable address space of
    /// `extent` bytes: the damaged offset and a non-zero XOR mask to apply
    /// to the byte there (non-zero so the flip always changes the stored
    /// value). With an empty extent the answer is `None` and **no random
    /// draw is made**, so plans without corruption events — and corruption
    /// events firing against an empty disk — consume exactly the rng
    /// stream they did before the integrity subsystem existed.
    pub fn flip_bytes(&mut self, extent: u64) -> Option<(u64, u8)> {
        if extent == 0 {
            return None;
        }
        let offset = self.rng.range(0, extent);
        let mask = self.rng.range(1, 256) as u8;
        self.stats.corruptions_injected += 1;
        Some((offset, mask))
    }

    fn pop_scripted(
        &mut self,
        server: u32,
        matches: impl Fn(ScriptedFault) -> bool,
    ) -> Option<ScriptedFault> {
        let (_, q) = self.scripted.iter_mut().find(|(s, _)| *s == server)?;
        match q.front() {
            Some(&f) if matches(f) => q.pop_front(),
            _ => None,
        }
    }

    /// Decides the fate of a request headed for `server`.
    pub fn request_fault(&mut self, server: u32) -> MessageFault {
        if let Some(f) = self.pop_scripted(server, |f| matches!(f, ScriptedFault::DropRequest)) {
            debug_assert_eq!(f, ScriptedFault::DropRequest);
            self.stats.requests_dropped += 1;
            return MessageFault::Drop;
        }
        if self.drop_request > 0.0 && self.rng.chance(self.drop_request) {
            self.stats.requests_dropped += 1;
            return MessageFault::Drop;
        }
        if self.delay_prob > 0.0 && self.rng.chance(self.delay_prob) {
            self.stats.delays_injected += 1;
            return MessageFault::Delay(self.delay_extra);
        }
        MessageFault::Deliver
    }

    /// Decides the fate of a reply sent by `server`.
    pub fn reply_fault(&mut self, server: u32) -> MessageFault {
        if let Some(f) = self.pop_scripted(server, |f| {
            matches!(
                f,
                ScriptedFault::DropReply
                    | ScriptedFault::DuplicateReply
                    | ScriptedFault::DelayReply(_)
            )
        }) {
            return match f {
                ScriptedFault::DropReply => {
                    self.stats.replies_dropped += 1;
                    MessageFault::Drop
                }
                ScriptedFault::DuplicateReply => {
                    self.stats.replies_duplicated += 1;
                    MessageFault::Duplicate
                }
                ScriptedFault::DelayReply(extra) => {
                    self.stats.delays_injected += 1;
                    MessageFault::Delay(extra)
                }
                ScriptedFault::DropRequest => unreachable!("filtered by matcher"),
            };
        }
        if self.drop_reply > 0.0 && self.rng.chance(self.drop_reply) {
            self.stats.replies_dropped += 1;
            return MessageFault::Drop;
        }
        if self.duplicate_reply > 0.0 && self.rng.chance(self.duplicate_reply) {
            self.stats.replies_duplicated += 1;
            return MessageFault::Duplicate;
        }
        if self.delay_prob > 0.0 && self.rng.chance(self.delay_prob) {
            self.stats.delays_injected += 1;
            return MessageFault::Delay(self.delay_extra);
        }
        MessageFault::Deliver
    }

    /// Folds `other` into this plan, so scenarios can compose independently
    /// authored plans (say, a crash schedule and a lossy-network plan)
    /// without hand-copying schedules.
    ///
    /// Semantics:
    ///
    /// * Lifecycle schedules are unioned element by element through the
    ///   same sorted insert the builder methods use, so the merged schedule
    ///   drains in `(at, server)` order no matter which plan contributed
    ///   which event — merge order cannot clobber drain order.
    /// * Scripted one-shot FIFOs are concatenated per server: `self`'s
    ///   staged faults fire before `other`'s for the same server.
    /// * A probabilistic knob set (non-zero) in `other` overrides `self`'s
    ///   value for that knob; knobs `other` left at zero keep `self`'s
    ///   setting.
    /// * The rng stays `self`'s stream (`other`'s is dropped), so a given
    ///   receiving plan draws the same fault sequence regardless of what
    ///   was merged in. Stats are summed.
    pub fn merge(&mut self, other: FaultPlan) {
        let FaultPlan {
            rng: _,
            seed: _,
            drop_request,
            drop_reply,
            duplicate_reply,
            delay_prob,
            delay_extra,
            scripted,
            crashes,
            restarts,
            corruptions,
            stats,
        } = other;
        if drop_request > 0.0 {
            self.drop_request = drop_request;
        }
        if drop_reply > 0.0 {
            self.drop_reply = drop_reply;
        }
        if duplicate_reply > 0.0 {
            self.duplicate_reply = duplicate_reply;
        }
        if delay_prob > 0.0 {
            self.delay_prob = delay_prob;
            self.delay_extra = delay_extra;
        }
        for (server, faults) in scripted {
            for fault in faults {
                self.inject_once(server, fault);
            }
        }
        for (at, server) in crashes {
            Self::insert_sorted(&mut self.crashes, server, at);
        }
        for (at, server) in restarts {
            Self::insert_sorted(&mut self.restarts, server, at);
        }
        for (at, server) in corruptions {
            Self::insert_sorted(&mut self.corruptions, server, at);
        }
        self.stats.merge(&stats);
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The jitter source for retry backoff, forked from the plan's own
    /// seeded stream so transport retries stay deterministic per plan.
    pub fn fork_rng(&mut self) -> SimRng {
        self.rng.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_faults() {
        let mut p = FaultPlan::new(7);
        for _ in 0..100 {
            assert_eq!(p.request_fault(0), MessageFault::Deliver);
            assert_eq!(p.reply_fault(0), MessageFault::Deliver);
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn scripted_faults_fire_once_in_fifo_order() {
        let mut p = FaultPlan::new(7);
        p.inject_once(1, ScriptedFault::DropReply);
        p.inject_once(1, ScriptedFault::DuplicateReply);
        // Other servers are unaffected.
        assert_eq!(p.reply_fault(0), MessageFault::Deliver);
        assert_eq!(p.reply_fault(1), MessageFault::Drop);
        assert_eq!(p.reply_fault(1), MessageFault::Duplicate);
        assert_eq!(p.reply_fault(1), MessageFault::Deliver);
        assert_eq!(p.stats().replies_dropped, 1);
        assert_eq!(p.stats().replies_duplicated, 1);
    }

    #[test]
    fn scripted_request_and_reply_queues_interleave() {
        // A DropRequest at the queue head must not be consumed by a reply
        // fault query, and vice versa.
        let mut p = FaultPlan::new(7);
        p.inject_once(2, ScriptedFault::DropRequest);
        assert_eq!(p.reply_fault(2), MessageFault::Deliver);
        assert_eq!(p.request_fault(2), MessageFault::Drop);
        assert_eq!(p.request_fault(2), MessageFault::Deliver);
    }

    #[test]
    fn probabilistic_faults_are_deterministic_per_seed() {
        let run = |seed: u64| -> (Vec<MessageFault>, FaultStats) {
            let mut p = FaultPlan::new(seed)
                .drop_request_prob(0.2)
                .drop_reply_prob(0.1)
                .duplicate_reply_prob(0.1);
            let mut seq = Vec::new();
            for i in 0..200 {
                seq.push(p.request_fault(i % 3));
                seq.push(p.reply_fault(i % 3));
            }
            (seq, p.stats())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.requests_dropped > 0 && sa.replies_dropped > 0);
        let (c, _) = run(43);
        assert_ne!(a, c);
    }

    #[test]
    fn lifecycle_events_fire_once_in_time_order() {
        let mut p = FaultPlan::new(1);
        p.schedule_crash(2, SimTime::from_secs(50));
        p.schedule_crash(1, SimTime::from_secs(10));
        p.schedule_restart(1, SimTime::from_secs(60));
        assert!(p.due_crashes(SimTime::from_secs(5)).is_empty());
        assert_eq!(p.due_crashes(SimTime::from_secs(55)), vec![1, 2]);
        assert!(p.due_crashes(SimTime::from_secs(100)).is_empty());
        assert!(p.due_restarts(SimTime::from_secs(59)).is_empty());
        assert_eq!(p.due_restarts(SimTime::from_secs(60)), vec![1]);
        assert!(p.due_restarts(SimTime::from_secs(61)).is_empty());
    }

    #[test]
    fn schedules_stay_sorted_and_drain_from_the_front() {
        let mut p = FaultPlan::new(1);
        // Inserted out of order, including a same-instant pair: the
        // schedule reads back sorted by (at, server) without a sort call.
        p.schedule_crash(5, SimTime::from_secs(30));
        p.schedule_crash(9, SimTime::from_secs(10));
        p.schedule_crash(3, SimTime::from_secs(10));
        p.schedule_crash(1, SimTime::from_secs(20));
        assert_eq!(
            p.crash_schedule(),
            vec![
                (3, SimTime::from_secs(10)),
                (9, SimTime::from_secs(10)),
                (1, SimTime::from_secs(20)),
                (5, SimTime::from_secs(30)),
            ]
        );
        // Partial drain takes only the due prefix; the rest stays queued.
        assert_eq!(p.due_crashes(SimTime::from_secs(15)), vec![3, 9]);
        assert_eq!(
            p.crash_schedule(),
            vec![(1, SimTime::from_secs(20)), (5, SimTime::from_secs(30))]
        );
        assert_eq!(p.due_crashes(SimTime::from_secs(100)), vec![1, 5]);
        assert!(p.crash_schedule().is_empty());
    }

    #[test]
    fn merged_plans_keep_sorted_drain_order() {
        // A crash/restart schedule authored in one plan and a delay plan
        // authored in another: merging must interleave the lifecycle events
        // into (at, server) order, exactly as if one plan had scheduled
        // them all.
        let mut outage = FaultPlan::new(1);
        outage.schedule_crash(2, SimTime::from_secs(40));
        outage.schedule_crash(0, SimTime::from_secs(10));
        outage.schedule_restart(0, SimTime::from_secs(70));

        let mut lossy = FaultPlan::new(2).delay(0.5, SimTime::from_millis(200));
        lossy.schedule_crash(1, SimTime::from_secs(10));
        lossy.schedule_crash(3, SimTime::from_secs(25));
        lossy.inject_once(1, ScriptedFault::DropReply);

        let mut merged = FaultPlan::new(1);
        merged.schedule_crash(2, SimTime::from_secs(40));
        merged.schedule_crash(0, SimTime::from_secs(10));
        merged.schedule_restart(0, SimTime::from_secs(70));
        merged.merge(lossy);

        assert_eq!(
            merged.crash_schedule(),
            vec![
                (0, SimTime::from_secs(10)),
                (1, SimTime::from_secs(10)),
                (3, SimTime::from_secs(25)),
                (2, SimTime::from_secs(40)),
            ]
        );
        assert_eq!(merged.restart_schedule(), vec![(0, SimTime::from_secs(70))]);
        // Drains honor the merged order.
        assert_eq!(merged.due_crashes(SimTime::from_secs(30)), vec![0, 1, 3]);
        // The scripted fault and the delay knob came across.
        assert_eq!(merged.reply_fault(1), MessageFault::Drop);
        assert_eq!(
            FaultPlan::new(9)
                .delay(1.0, SimTime::from_millis(200))
                .delay_extra,
            SimTime::from_millis(200)
        );
        let _ = outage;
    }

    #[test]
    fn merge_is_order_independent_for_schedules() {
        // Building (A then merge B) and (B then merge A) must produce the
        // same lifecycle drain order: sorted insertion, not append order,
        // decides firing order.
        let build_a = |p: &mut FaultPlan| {
            p.schedule_crash(4, SimTime::from_secs(20));
            p.schedule_crash(1, SimTime::from_secs(5));
            p.schedule_restart(4, SimTime::from_secs(90));
        };
        let build_b = |p: &mut FaultPlan| {
            p.schedule_crash(2, SimTime::from_secs(5));
            p.schedule_crash(0, SimTime::from_secs(50));
            p.schedule_restart(2, SimTime::from_secs(60));
        };

        let mut ab = FaultPlan::new(7);
        build_a(&mut ab);
        let mut b = FaultPlan::new(8);
        build_b(&mut b);
        ab.merge(b);

        let mut ba = FaultPlan::new(7);
        build_b(&mut ba);
        let mut a = FaultPlan::new(8);
        build_a(&mut a);
        ba.merge(a);

        assert_eq!(ab.crash_schedule(), ba.crash_schedule());
        assert_eq!(ab.restart_schedule(), ba.restart_schedule());
        assert_eq!(
            ab.crash_schedule(),
            vec![
                (1, SimTime::from_secs(5)),
                (2, SimTime::from_secs(5)),
                (4, SimTime::from_secs(20)),
                (0, SimTime::from_secs(50)),
            ]
        );
        // The receiver's rng stream is untouched by the merge: its fault
        // draws match a never-merged plan with the same seed and knobs.
        let mut merged = FaultPlan::new(3);
        merged.merge(FaultPlan::new(99).drop_request_prob(0.3));
        let mut plain = FaultPlan::new(3).drop_request_prob(0.3);
        let seq_m: Vec<_> = (0..50).map(|_| merged.request_fault(0)).collect();
        let seq_p: Vec<_> = (0..50).map(|_| plain.request_fault(0)).collect();
        assert_eq!(seq_m, seq_p);
    }

    #[test]
    fn torn_bytes_is_bounded_and_quiet_when_synced() {
        let mut p = FaultPlan::new(11);
        // With nothing unsynced, no draw happens: the stream is untouched,
        // so a subsequent draw matches a fresh plan's first draw.
        assert_eq!(p.torn_bytes(0), 0);
        let a = p.torn_bytes(1000);
        let b = FaultPlan::new(11).torn_bytes(1000);
        assert_eq!(a, b);
        assert!(a <= 1000);
        // The draw covers the full inclusive range deterministically.
        let mut p = FaultPlan::new(11);
        let draws: Vec<u64> = (0..200).map(|_| p.torn_bytes(3)).collect();
        assert!(draws.iter().all(|&d| d <= 3));
        assert!(draws.contains(&0) && draws.contains(&3));
    }

    #[test]
    fn delay_faults_carry_the_extra_time() {
        let mut p = FaultPlan::new(3).delay(1.0, SimTime::from_millis(250));
        assert_eq!(
            p.request_fault(0),
            MessageFault::Delay(SimTime::from_millis(250))
        );
        assert_eq!(p.stats().delays_injected, 1);
    }
}
