//! Statistics collected by experiments: counters, histograms, percentiles,
//! running moments, and time-bucketed series.

use crate::clock::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A labelled counter map — used for the server call-mix histogram
/// (Section 5.2: "cache validity checking calls are preponderant,
/// accounting for 65% of the total").
///
/// Labels are interned: the map owns one boxed copy of each distinct
/// label, allocated the first time it is seen. Bumping an existing label
/// looks the key up by `&str` and is allocation-free, which matters
/// because [`Counter::bump`] sits on the per-call transport path (the
/// old `entry(label.to_string())` allocated a `String` on every call).
#[derive(Debug, Default, Clone)]
pub struct Counter {
    counts: BTreeMap<Box<str>, u64>,
}

impl Counter {
    /// Creates an empty counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increments `label` by one.
    pub fn bump(&mut self, label: &str) {
        self.add(label, 1);
    }

    /// Increments `label` by `n`. Allocates only on the first sighting of
    /// a label; every later bump of the same label is allocation-free.
    pub fn add(&mut self, label: &str, n: u64) {
        if let Some(count) = self.counts.get_mut(label) {
            *count += n;
        } else {
            self.counts.insert(label.into(), n);
        }
    }

    /// The count for `label` (zero if never seen).
    pub fn get(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of the total attributed to `label`; zero when empty.
    pub fn fraction(&self, label: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(label) as f64 / total as f64
        }
    }

    /// Iterates `(label, count)` in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (&**k, v))
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Removes all counts.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let mut rows: Vec<_> = self.counts.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1));
        for (label, &count) in rows {
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * count as f64 / total as f64
            };
            writeln!(f, "  {label:<24} {count:>10}  ({pct:5.1}%)")?;
        }
        Ok(())
    }
}

/// A histogram over `u64` values with caller-supplied bucket edges.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram whose buckets are `(-inf, e0], (e0, e1], ...,
    /// (eN, +inf)`. Edges must be strictly increasing.
    pub fn with_edges(edges: &[u64]) -> Histogram {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self.edges.partition_point(|&e| e < value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations at or below `edge` (must be one of the
    /// configured edges).
    pub fn cumulative_fraction_at(&self, edge: u64) -> f64 {
        let pos = self
            .edges
            .iter()
            .position(|&e| e == edge)
            .expect("edge not configured");
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts[..=pos].iter().sum();
        below as f64 / self.total as f64
    }

    /// Iterates `(upper_edge, count)`; the final bucket reports
    /// `u64::MAX` as its edge.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.edges
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }
}

/// Exact percentiles over a retained sample set.
#[derive(Debug, Default, Clone)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) by nearest-rank.
    /// Returns `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Folds another sample set into this one (used when per-cluster
    /// aggregates are merged into system-wide totals).
    pub fn merge(&mut self, other: &Percentiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

/// Streaming mean/variance via Welford's algorithm — used where retaining
/// every sample would be wasteful (per-operation latencies in long runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates empty stats.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation; zero for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A value accumulated per fixed-width virtual-time bucket — used for
/// plotting load over a simulated day.
#[derive(Debug, Clone)]
pub struct TimeBuckets {
    width: SimTime,
    buckets: Vec<f64>,
}

impl TimeBuckets {
    /// Creates a series with the given bucket width.
    pub fn new(width: SimTime) -> TimeBuckets {
        assert!(width > SimTime::ZERO);
        TimeBuckets {
            width,
            buckets: Vec::new(),
        }
    }

    /// Adds `value` to the bucket containing instant `t`.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_micros() / self.width.as_micros()) as usize;
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += value;
    }

    /// Iterates `(bucket_start, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_micros(i as u64 * self.width.as_micros()), v))
    }

    /// The largest bucket value, with its start time; `None` when empty.
    pub fn peak(&self) -> Option<(SimTime, f64)> {
        self.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN bucket"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_fractions() {
        let mut c = Counter::new();
        c.add("validate", 65);
        c.add("status", 27);
        c.add("fetch", 4);
        c.add("store", 2);
        c.add("other", 2);
        assert_eq!(c.total(), 100);
        assert!((c.fraction("validate") - 0.65).abs() < 1e-12);
        assert_eq!(c.get("missing"), 0);
        let mut d = Counter::new();
        d.bump("fetch");
        c.merge(&d);
        assert_eq!(c.get("fetch"), 5);
    }

    #[test]
    fn histogram_buckets_and_cdf() {
        let mut h = Histogram::with_edges(&[1_000, 10_000, 100_000]);
        for v in [500, 1_000, 5_000, 50_000, 500_000] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        // <=1000: 2 of 5.
        assert!((h.cumulative_fraction_at(1_000) - 0.4).abs() < 1e-12);
        assert!((h.cumulative_fraction_at(100_000) - 0.8).abs() < 1e-12);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets[0], (1_000, 2));
        assert_eq!(buckets[3], (u64::MAX, 1));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::with_edges(&[10, 10]);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        assert!(p.percentile(50.0).is_none());
        for v in 1..=100 {
            p.record(v as f64);
        }
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.percentile(50.0), Some(51.0));
        assert_eq!(p.mean(), Some(50.5));
    }

    #[test]
    fn running_stats_match_direct_computation() {
        let mut s = RunningStats::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn time_buckets_accumulate_and_peak() {
        let mut tb = TimeBuckets::new(SimTime::from_secs(60));
        tb.add(SimTime::from_secs(10), 1.0);
        tb.add(SimTime::from_secs(59), 1.0);
        tb.add(SimTime::from_secs(200), 5.0);
        let (at, v) = tb.peak().unwrap();
        assert_eq!(at, SimTime::from_secs(180));
        assert_eq!(v, 5.0);
        let first = tb.iter().next().unwrap();
        assert_eq!(first.1, 2.0);
    }
}
