//! FIFO service centers with utilization accounting.
//!
//! A [`Resource`] models a serially-shared piece of hardware — a cluster
//! server's CPU, its disk arm, a network link. Requests are served in the
//! order they are *submitted* (the experiment drivers submit client
//! operations in virtual-time order, so submission order ≈ arrival order).
//!
//! Besides producing queueing delay, a resource records how much service it
//! performed in fixed-width time buckets. That bucketed record is exactly
//! what the paper reports in Section 5.2: "Server CPU utilization ... nearly
//! 40% on the most heavily loaded servers ... short-term resource
//! utilizations are much higher, sometimes peaking at 98%".

use crate::clock::SimTime;
use std::cell::RefCell;

/// Width of a utilization bucket: one virtual minute.
pub const BUCKET_WIDTH: SimTime = SimTime(60_000_000);

#[derive(Debug, Default)]
struct Inner {
    /// Earliest virtual time at which the next request can begin service.
    available_at: SimTime,
    /// Total service time performed.
    busy_total: SimTime,
    /// Total queueing delay imposed on requests.
    queue_total: SimTime,
    /// Number of requests served.
    requests: u64,
    /// Busy microseconds per [`BUCKET_WIDTH`] bucket, indexed by
    /// `start / BUCKET_WIDTH`.
    buckets: Vec<u64>,
}

/// A FIFO service center in virtual time.
#[derive(Debug)]
pub struct Resource {
    name: String,
    inner: RefCell<Inner>,
}

/// Summary of a resource's activity over an observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Resource name as given at construction.
    pub name: String,
    /// Mean utilization over `[window_start, window_end]`: busy time divided
    /// by window length.
    pub mean_utilization: f64,
    /// Highest single-bucket utilization observed (the short-term peak).
    pub peak_utilization: f64,
    /// Virtual time of the start of the peak bucket.
    pub peak_at: SimTime,
    /// Number of requests served.
    pub requests: u64,
    /// Mean queueing delay per request.
    pub mean_queue_delay: SimTime,
    /// Total busy time.
    pub busy_total: SimTime,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new(name: impl Into<String>) -> Resource {
        Resource {
            name: name.into(),
            inner: RefCell::new(Inner::default()),
        }
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a request arriving at `arrival` demanding `service` time.
    ///
    /// Returns the completion time. Queueing delay (`start - arrival`) and
    /// service are recorded for the utilization report. A zero-service
    /// request completes immediately at `max(arrival, available_at)` without
    /// holding the resource.
    pub fn acquire(&self, arrival: SimTime, service: SimTime) -> SimTime {
        let mut inner = self.inner.borrow_mut();
        let start = arrival.max(inner.available_at);
        let end = start + service;
        inner.available_at = end;
        inner.busy_total += service;
        inner.queue_total += start - arrival;
        inner.requests += 1;
        if service > SimTime::ZERO {
            Self::record_buckets(&mut inner.buckets, start, end);
        }
        end
    }

    /// Charges service time without queueing semantics — used for resources
    /// we track for utilization but do not model contention on (e.g. the
    /// workstation's own CPU, which has exactly one user).
    pub fn charge(&self, start: SimTime, service: SimTime) -> SimTime {
        let mut inner = self.inner.borrow_mut();
        let end = start + service;
        inner.busy_total += service;
        inner.requests += 1;
        if end > inner.available_at {
            inner.available_at = end;
        }
        if service > SimTime::ZERO {
            Self::record_buckets(&mut inner.buckets, start, end);
        }
        end
    }

    fn record_buckets(buckets: &mut Vec<u64>, start: SimTime, end: SimTime) {
        let w = BUCKET_WIDTH.as_micros();
        let first = start.as_micros() / w;
        let last = (end.as_micros().saturating_sub(1)) / w;
        if buckets.len() <= last as usize {
            buckets.resize(last as usize + 1, 0);
        }
        for b in first..=last {
            let bucket_start = b * w;
            let bucket_end = bucket_start + w;
            let s = start.as_micros().max(bucket_start);
            let e = end.as_micros().min(bucket_end);
            buckets[b as usize] += e - s;
        }
    }

    /// The earliest time the next request could begin service.
    pub fn available_at(&self) -> SimTime {
        self.inner.borrow().available_at
    }

    /// Total service time performed so far.
    pub fn busy_total(&self) -> SimTime {
        self.inner.borrow().busy_total
    }

    /// Number of requests served so far.
    pub fn requests(&self) -> u64 {
        self.inner.borrow().requests
    }

    /// Produces the utilization report for the window `[0, window_end]`.
    pub fn report(&self, window_end: SimTime) -> UtilizationReport {
        let inner = self.inner.borrow();
        let window = window_end.as_micros().max(1);
        let w = BUCKET_WIDTH.as_micros();
        let mut peak = 0u64;
        let mut peak_at = SimTime::ZERO;
        for (i, &busy) in inner.buckets.iter().enumerate() {
            if busy > peak {
                peak = busy;
                peak_at = SimTime::from_micros(i as u64 * w);
            }
        }
        UtilizationReport {
            name: self.name.clone(),
            mean_utilization: inner.busy_total.as_micros() as f64 / window as f64,
            peak_utilization: peak as f64 / w as f64,
            peak_at,
            requests: inner.requests,
            mean_queue_delay: SimTime::from_micros(
                inner
                    .queue_total
                    .as_micros()
                    .checked_div(inner.requests)
                    .unwrap_or(0),
            ),
            busy_total: inner.busy_total,
        }
    }

    /// The busy fraction of the [`BUCKET_WIDTH`] bucket containing `at` —
    /// a read-only probe of the short-term utilization the flight
    /// recorder watches. Work charged later into the same bucket is not
    /// yet visible; the probe reflects what has been performed so far.
    pub fn bucket_utilization(&self, at: SimTime) -> f64 {
        let inner = self.inner.borrow();
        let w = BUCKET_WIDTH.as_micros();
        let idx = (at.as_micros() / w) as usize;
        inner.buckets.get(idx).copied().unwrap_or(0) as f64 / w as f64
    }

    /// The per-minute utilization series up to `window_end`: one
    /// `(bucket_start, utilization)` pair per [`BUCKET_WIDTH`] bucket.
    /// Used to plot load over a simulated day.
    pub fn utilization_series(&self, window_end: SimTime) -> Vec<(SimTime, f64)> {
        let inner = self.inner.borrow();
        let w = BUCKET_WIDTH.as_micros();
        let n_buckets = (window_end.as_micros().div_ceil(w)) as usize;
        (0..n_buckets)
            .map(|i| {
                let busy = inner.buckets.get(i).copied().unwrap_or(0);
                (SimTime::from_micros(i as u64 * w), busy as f64 / w as f64)
            })
            .collect()
    }

    /// Clears all recorded activity, returning the resource to idle at time
    /// zero. Used when one topology is reused across experiment trials.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_queueing_delays_later_arrivals() {
        let r = Resource::new("cpu");
        let e1 = r.acquire(SimTime::from_secs(0), SimTime::from_secs(3));
        assert_eq!(e1, SimTime::from_secs(3));
        // Arrives at t=1 but must wait until t=3.
        let e2 = r.acquire(SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(e2, SimTime::from_secs(5));
        // Arrives after the queue drains: no delay.
        let e3 = r.acquire(SimTime::from_secs(10), SimTime::from_secs(1));
        assert_eq!(e3, SimTime::from_secs(11));
        let rep = r.report(SimTime::from_secs(12));
        assert_eq!(rep.requests, 3);
        assert_eq!(rep.busy_total, SimTime::from_secs(6));
        assert_eq!(rep.mean_utilization, 0.5);
        // Total queue delay was 2s over 3 requests.
        assert_eq!(rep.mean_queue_delay, SimTime::from_micros(666_666));
    }

    #[test]
    fn zero_service_does_not_occupy() {
        let r = Resource::new("cpu");
        r.acquire(SimTime::ZERO, SimTime::ZERO);
        assert_eq!(r.available_at(), SimTime::ZERO);
        assert_eq!(r.busy_total(), SimTime::ZERO);
    }

    #[test]
    fn buckets_split_across_boundaries() {
        let r = Resource::new("cpu");
        // 30s of service starting 45s in: 15s in bucket 0, 15s in bucket 1.
        r.acquire(SimTime::from_secs(45), SimTime::from_secs(30));
        let rep = r.report(SimTime::from_mins(2));
        // Each bucket holds 15s of 60s: utilization 0.25 in the peak bucket.
        assert!((rep.peak_utilization - 0.25).abs() < 1e-9);
        assert!((rep.mean_utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn peak_identifies_busiest_minute() {
        let r = Resource::new("cpu");
        // Bucket 0: 6s busy. Bucket 2: 54s busy.
        r.acquire(SimTime::from_secs(0), SimTime::from_secs(6));
        r.acquire(SimTime::from_secs(120), SimTime::from_secs(54));
        let rep = r.report(SimTime::from_mins(3));
        assert!((rep.peak_utilization - 0.9).abs() < 1e-9);
        assert_eq!(rep.peak_at, SimTime::from_secs(120));
    }

    #[test]
    fn charge_overlapping_intervals_accumulate() {
        let r = Resource::new("ws-cpu");
        r.charge(SimTime::from_secs(0), SimTime::from_secs(10));
        r.charge(SimTime::from_secs(5), SimTime::from_secs(10));
        assert_eq!(r.busy_total(), SimTime::from_secs(20));
        assert_eq!(r.available_at(), SimTime::from_secs(15));
    }

    #[test]
    fn reset_clears_state() {
        let r = Resource::new("cpu");
        r.acquire(SimTime::ZERO, SimTime::from_secs(5));
        r.reset();
        assert_eq!(r.busy_total(), SimTime::ZERO);
        assert_eq!(r.requests(), 0);
        assert_eq!(r.available_at(), SimTime::ZERO);
    }
}
