//! Virtual-time simulation substrate for the ITC distributed file system
//! reproduction.
//!
//! The 1985 paper measured a deployed prototype: 120 workstations, 6 servers,
//! real users. This crate replaces the physical testbed with a deterministic
//! virtual-time engine. Protocol code (caching, validation, protection,
//! transfer) runs for real; only *time* is simulated. Three ideas carry the
//! whole design:
//!
//! * [`Clock`] — a shared virtual clock in microseconds. Nodes advance it as
//!   work is "performed"; nothing ever sleeps.
//! * [`Resource`] — a FIFO service center (a server CPU, a disk, a network
//!   link). A request arriving at time `t` with service demand `s` begins at
//!   `max(t, earliest_available)` and completes `s` later. This single-queue
//!   model yields contention, queueing delay and utilization — the quantities
//!   the paper reports.
//! * [`Scheduler`] — a deterministic discrete-event calendar keyed by
//!   `(SimTime, class, tie, seq)` with seeded tie-breaking. The system layer
//!   expresses each RPC as a chain of events (request departs → arrives →
//!   queues → is served → reply departs → reply arrives) so that message
//!   faults, retry timeouts, and server crash/restart schedules genuinely
//!   interleave instead of being folded into one synchronous call.
//! * [`Costs`] — every timing constant in one struct, so each ablation in the
//!   paper (software vs hardware encryption, server-side vs client-side
//!   pathname traversal, process-per-client vs LWP server) is a parameter
//!   change rather than a code fork.
//!
//! Determinism: all randomness flows through [`SimRng`], seeded explicitly.
//! Running the same experiment twice produces bit-identical results. That
//! extends to failure: [`FaultPlan`] injects message drops, duplicates,
//! delays, and server crash/restart schedules from its own seeded stream,
//! so fault scenarios — and the retries and recoveries they provoke — are
//! bit-reproducible too.

pub mod clock;
pub mod costs;
pub mod fault;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod trace;

pub use clock::{Clock, SimTime};
pub use costs::{Costs, ServerStructure, TraversalMode, ValidationMode};
pub use fault::{FaultPlan, FaultStats, MessageFault, ScriptedFault};
pub use resource::{Resource, UtilizationReport};
pub use rng::SimRng;
pub use sched::{EventClass, EventId, EventKey, EventStats, Firing, Scheduler};
pub use stats::{Counter, Histogram, Percentiles, RunningStats, TimeBuckets};
pub use trace::{
    AnomalyDump, AnomalyReason, HealthEvent, HealthRuleKind, Span, SpanClass, TraceCollector,
    TraceId, TraceStats,
};
