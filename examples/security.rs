//! Security walkthrough: the Section 3.4 mechanisms, end to end.
//!
//! Workstations are never trusted. This example shows what each layer
//! refuses: bad passwords at the handshake, tampered ciphertext at the
//! channel, identity claims inside requests at the server, and revoked
//! users at the access list — including the negative-rights rapid
//! revocation path.
//!
//! ```text
//! cargo run --example security
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::protect::{AccessList, Rights};
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::cryptbox::{channel, derive_key, handshake, mode};

fn main() {
    // --- Layer 1: the cipher and channel ---------------------------------
    let key = derive_key("users-password", "alice");
    let sealed = mode::seal(key, 1, b"Fetch /vice/usr/alice/grades");
    let mut tampered = sealed.clone();
    tampered[20] ^= 0x01;
    println!(
        "tampered ciphertext rejected: {}",
        mode::open(key, &tampered).is_err()
    );

    // Replay across a channel is caught by sequence numbers.
    let (mut client, mut server) = channel::pair(key);
    let msg = client.seal_msg(b"StoreFile /vice/usr/alice/thesis");
    server.open_msg(&msg).unwrap();
    println!(
        "replayed message rejected: {}",
        server.open_msg(&msg).is_err()
    );

    // --- Layer 2: mutual authentication ----------------------------------
    // An impostor server that does not know alice's key cannot answer her
    // challenge.
    let alice = derive_key("users-password", "alice");
    let impostor = derive_key("a-guess", "alice");
    let (hs, m1) = handshake::ClientHandshake::initiate(alice, 42);
    let reply_result = handshake::ServerHandshake::respond(impostor, &m1, 43);
    println!("impostor server rejected: {}", reply_result.is_err());
    let _ = hs;

    // --- Layer 3: the full system ----------------------------------------
    let mut sys = ItcSystem::build(SystemConfig::small_campus(1, 3));
    sys.add_user("alice", "users-password").unwrap();
    sys.add_user("mallory", "1337").unwrap();
    sys.add_group("team").unwrap();
    sys.add_member("team", "mallory").unwrap();

    // A project volume: alice administers, the team may read and write.
    let mut acl = AccessList::new();
    acl.grant("alice", Rights::ALL);
    acl.grant(
        "team",
        Rights::READ | Rights::WRITE | Rights::INSERT | Rights::LOOKUP,
    );
    sys.create_volume("proj", "/vice/proj", ServerId(0), acl.clone())
        .unwrap();

    println!(
        "login with wrong password fails: {}",
        sys.login(0, "alice", "not-her-password").is_err()
    );
    sys.login(0, "alice", "users-password").unwrap();
    sys.login(1, "mallory", "1337").unwrap();

    sys.store(0, "/vice/proj/plan.txt", b"launch on thursday".to_vec())
        .unwrap();
    println!(
        "team member can read: {}",
        sys.fetch(1, "/vice/proj/plan.txt").is_ok()
    );

    // Mallory turns out to be untrustworthy. Removing him from every group
    // means updating the replicated protection database — slow. Negative
    // rights revoke at the single custodian, immediately.
    let mut revoked = acl;
    revoked.deny("mallory", Rights::ALL);
    sys.set_acl(0, "/vice/proj", revoked).unwrap();
    println!(
        "after negative rights, mallory blocked from write: {}, read: {}, even via his cache: {}",
        sys.store(1, "/vice/proj/plan.txt", b"sabotage".to_vec())
            .is_err(),
        sys.fetch(1, "/vice/proj/plan.txt").is_err(),
        // His cached copy exists, but check-on-open revalidation is also
        // protection-checked.
        sys.venus(1).cache().peek("/vice/proj/plan.txt").is_some(),
    );

    // Other team members are untouched.
    sys.add_user("bob", "pw").unwrap();
    sys.add_member("team", "bob").unwrap();
    sys.login(2, "bob", "pw").unwrap();
    println!(
        "bob still reads fine: {}",
        sys.fetch(2, "/vice/proj/plan.txt").is_ok()
    );
}
