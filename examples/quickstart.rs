//! Quickstart: build a two-cluster campus, log in, and watch whole-file
//! caching do its job.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;

fn main() {
    // Two clusters, one Vice server each, two workstations per cluster —
    // a miniature of Figure 2-2.
    let mut sys = ItcSystem::build(SystemConfig::small_campus(2, 2));
    sys.add_user("satya", "correct-horse").unwrap();
    let ws = sys.workstation_in_cluster(0);

    // Authentication is a real mutual handshake: a wrong password fails
    // before any file operation is possible.
    assert!(sys.login(ws, "satya", "wrong-password").is_err());
    sys.login(ws, "satya", "correct-horse").unwrap();
    println!("logged in as satya at workstation {ws}");

    // The shared name space looks like a normal file system.
    sys.mkdir_p(ws, "/vice/usr/satya/doc").unwrap();
    sys.store(
        ws,
        "/vice/usr/satya/doc/paper.tex",
        b"Caching of entire files at workstations is a key element in this design.".to_vec(),
    )
    .unwrap();

    let text = sys.fetch(ws, "/vice/usr/satya/doc/paper.tex").unwrap();
    println!("read back {} bytes through the cache", text.len());

    // The second open of a cached file does not fetch again.
    let fetches_before = sys.total_server_calls_of("fetch");
    let _ = sys.fetch(ws, "/vice/usr/satya/doc/paper.tex").unwrap();
    let fetches_after = sys.total_server_calls_of("fetch");
    println!(
        "second open caused {} fetch calls (cache hit ratio so far: {:.0}%)",
        fetches_after - fetches_before,
        100.0 * sys.venus(ws).cache().stats().hit_ratio()
    );

    // Local files (like compiler temporaries) never touch Vice at all.
    let calls_before = sys.metrics().total_calls();
    sys.store(ws, "/tmp/scratch.o", vec![0u8; 4096]).unwrap();
    sys.unlink(ws, "/tmp/scratch.o").unwrap();
    assert_eq!(sys.metrics().total_calls(), calls_before);
    println!("temporary files stayed local: 0 server calls");

    // Every byte that did cross the network went through an encrypted,
    // sequenced, mutually-authenticated channel.
    let m = sys.metrics();
    println!(
        "totals: {} server calls, busiest server CPU {:.1}% of elapsed time",
        m.total_calls(),
        100.0 * m.max_server_cpu_utilization()
    );
}
