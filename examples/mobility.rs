//! User mobility: the Section 3.2 scenario.
//!
//! "If a user places all his files in the shared name space, he can move
//! to any other workstation attached to Vice and use it exactly as he
//! would use his own workstation."
//!
//! A faculty member works in her office (cluster 0), walks across campus
//! to a library workstation (cluster 1), continues the same work, and
//! returns. Her files follow her; only timing differs.
//!
//! ```text
//! cargo run --example mobility
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::{ItcSystem, WsId};
use itc_afs::sim::SimTime;

fn work_session(sys: &mut ItcSystem, ws: WsId, label: &str) -> SimTime {
    let t0 = sys.ws_time(ws);
    // Read the whole working set.
    for i in 0..8 {
        let path = format!("/vice/usr/prof/notes/ch{i}.txt");
        let _ = sys.fetch(ws, &path).unwrap();
    }
    // Edit chapter 3.
    let path = "/vice/usr/prof/notes/ch3.txt";
    let mut data = sys.fetch(ws, path).unwrap();
    data.extend_from_slice(b"\n...new paragraph written elsewhere...");
    sys.store(ws, path, data).unwrap();
    let elapsed = sys.ws_time(ws) - t0;
    println!("{label:<34} {elapsed}");
    elapsed
}

fn main() {
    let mut sys = ItcSystem::build(SystemConfig::small_campus(2, 2));
    sys.add_user("prof", "tenure").unwrap();
    // Her volume is custodied by the server in her office's cluster.
    sys.create_user_volume("prof", 0).unwrap();
    for i in 0..8 {
        sys.admin_install_file(
            &format!("/vice/usr/prof/notes/ch{i}.txt"),
            vec![b'#'; 24_000],
        )
        .unwrap();
    }

    let office = sys.workstation_in_cluster(0);
    let library = sys.workstation_in_cluster(1);

    sys.login(office, "prof", "tenure").unwrap();
    println!("-- at the office (cluster 0, same cluster as her files) --");
    let office_cold = work_session(&mut sys, office, "office, cold cache");
    let office_warm = work_session(&mut sys, office, "office, warm cache");

    println!("-- walks to the library (cluster 1) --");
    // Wall time passes while she walks: bring the library workstation's
    // local clock up to campus time.
    let now = sys.now();
    sys.advance_ws(library, now);
    sys.login(library, "prof", "tenure").unwrap();
    let library_cold = work_session(&mut sys, library, "library, cold cache (cache fill)");
    let library_warm = work_session(&mut sys, library, "library, warm cache");

    println!("-- back at the office: her cache is still warm --");
    let now = sys.now();
    sys.advance_ws(office, now);
    // The edit she made at the library broke nothing: check-on-open
    // validation (or a callback break) refreshes exactly the changed file.
    let office_back = work_session(&mut sys, office, "office again");

    println!();
    println!(
        "one-time move penalty: {:.1}x a warm session; steady cross-cluster penalty: {:.2}x",
        library_cold.as_secs_f64() / office_warm.as_secs_f64(),
        library_warm.as_secs_f64() / office_warm.as_secs_f64(),
    );
    // The library edit is visible at the office.
    let text = sys.fetch(office, "/vice/usr/prof/notes/ch3.txt").unwrap();
    assert!(text.ends_with(b"...new paragraph written elsewhere..."));
    println!("the paragraph written at the library is on screen at the office");
    let _ = (office_cold, office_back);
}
