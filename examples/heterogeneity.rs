//! Heterogeneity via symbolic links: the Section 3.1 / Figure 3-2 scheme.
//!
//! "On a Sun workstation, the local directory /bin is a symbolic link to
//! the remote directory /vice/unix/sun/bin; on a Vax, /bin is a symbolic
//! link to /vice/unix/vax/bin."
//!
//! The same program name — `/bin/cc` — names different Vice files on
//! different workstation types, without either the user or the program
//! knowing.
//!
//! ```text
//! cargo run --example heterogeneity
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;
use itc_afs::core::venus::Space;

fn main() {
    let mut sys = ItcSystem::build(SystemConfig::small_campus(1, 4));
    sys.add_user("student", "pw").unwrap();

    // The operator installs per-architecture system binaries in Vice.
    sys.admin_install_file("/vice/unix/sun/bin/cc", b"68010 code generator".to_vec())
        .unwrap();
    sys.admin_install_file("/vice/unix/vax/bin/cc", b"vax-11 code generator".to_vec())
        .unwrap();

    // The build alternates Sun and Vax workstations: ws 0 is a Sun, ws 1
    // a Vax.
    for ws in [0usize, 1] {
        sys.login(ws, "student", "pw").unwrap();
        let arch = sys.venus(ws).namespace().ws_type().arch();

        // Where does /bin/cc really point? The classification machinery
        // answers without any I/O.
        let space = sys.classify(ws, "/bin/cc").unwrap();
        let resolved = match &space {
            Space::Vice(p) => p.clone(),
            Space::Local(p) => p.clone(),
        };
        let data = sys.fetch(ws, "/bin/cc").unwrap();
        println!(
            "ws{ws} ({arch:>3}):  /bin/cc -> {resolved}  contents: {:?}",
            String::from_utf8_lossy(&data)
        );
    }

    // A user can build private shortcuts into the shared space too
    // ("symbolic links from the local name space into Vice are supported").
    sys.mkdir_p(0, "/vice/usr/student/project").unwrap();
    sys.store(
        0,
        "/vice/usr/student/project/main.c",
        b"int main(){}".to_vec(),
    )
    .unwrap();
    sys.venus_mut(0)
        .namespace_mut()
        .local_mut()
        .symlink("/local/proj", "/vice/usr/student/project", 0, 0)
        .unwrap();
    let through_link = sys.fetch(0, "/local/proj/main.c").unwrap();
    println!(
        "private shortcut: /local/proj/main.c -> {:?}",
        String::from_utf8_lossy(&through_link)
    );

    // An IBM PC class machine has no /bin at all — it would reach Vice
    // through a surrogate server (Section 3.3); its namespace reflects
    // that.
    let pc =
        itc_afs::core::venus::Namespace::standard(itc_afs::core::venus::WorkstationType::IbmPc);
    println!(
        "ibmpc: classify(/bin/cc) = {:?}",
        pc.classify("/bin/cc", true)
            .map(|_| ())
            .map_err(|e| e.to_string())
    );
}
