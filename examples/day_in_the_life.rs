//! A working day on the system, plotted.
//!
//! Reproduces the conditions behind Section 5.2's utilization figures: a
//! population of typical users on one cluster server over several hours,
//! with a midday surge, then prints the server CPU load minute by minute —
//! the "short-term resource utilizations are much higher, sometimes
//! peaking at 98%" effect is visible as the spike in the middle.
//!
//! ```text
//! cargo run --release --example day_in_the_life
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::sim::SimTime;
use itc_afs::workload::day::run_day;
use itc_afs::workload::DayConfig;

fn main() {
    let day = DayConfig {
        duration: SimTime::from_hours(3),
        surge: (SimTime::from_hours(1), SimTime::from_mins(90)),
        surge_multiplier: 4.0,
        ..DayConfig::default()
    };
    println!("simulating a 3-hour stretch for 12 users on one server...");
    let (sys, report) = run_day(SystemConfig::prototype(1, 12), &day).unwrap();

    let m = &report.metrics;
    println!(
        "\n{} user operations, {} server calls, hit ratio {:.1}%\n",
        report.ops,
        m.total_calls(),
        100.0 * m.hit_ratio()
    );

    // Per-5-minute server CPU utilization, as a bar chart.
    let series = sys
        .server(ServerId(0))
        .cpu()
        .utilization_series(report.duration);
    println!("server CPU utilization (each row = 5 minutes, '#' = 2.5%):");
    for chunk in series.chunks(5) {
        let t = chunk[0].0;
        let mean: f64 = chunk.iter().map(|(_, u)| u).sum::<f64>() / chunk.len() as f64;
        let bars = (mean * 40.0).round() as usize;
        println!(
            "  {:>3}min |{:<40}| {:>5.1}%",
            t.as_secs_f64() as u64 / 60,
            "#".repeat(bars.min(40)),
            mean * 100.0
        );
    }

    println!("\ncall mix over the day:");
    print!("{}", m.call_mix);
    println!(
        "peak one-minute CPU: {:.1}% (mean {:.1}%) — the paper's short-term peaks",
        100.0 * m.peak_server_cpu_utilization(),
        100.0 * m.max_server_cpu_utilization()
    );
}
