//! The five-phase benchmark of Section 5.2, run three ways: all-local,
//! all-remote against an unloaded server in the same cluster, and
//! all-remote against a server across the backbone.
//!
//! ```text
//! cargo run --release --example andrew_benchmark
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;
use itc_afs::workload::{AndrewBenchmark, PhaseTimes, TreeLocation};

fn print_row(label: &str, p: &PhaseTimes) {
    println!(
        "{label:<22} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:>9.1}",
        p.make_dir.as_secs_f64(),
        p.copy.as_secs_f64(),
        p.scan_dir.as_secs_f64(),
        p.read_all.as_secs_f64(),
        p.make.as_secs_f64(),
        p.total().as_secs_f64(),
    );
}

fn fresh(volume_cluster: Option<u32>) -> ItcSystem {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.add_user("bench", "pw").unwrap();
    if let Some(c) = volume_cluster {
        sys.create_user_volume("bench", c).unwrap();
    }
    sys.login(0, "bench", "pw").unwrap(); // ws 0 lives in cluster 0
    sys
}

fn main() {
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9}",
        "configuration (secs)", "MakeDir", "Copy", "ScanDir", "ReadAll", "Make", "TOTAL"
    );

    // All files local.
    let mut sys = fresh(None);
    let local = AndrewBenchmark::new(
        TreeLocation::Local("/local/src".into()),
        TreeLocation::Local("/local/obj".into()),
    );
    local.install_source(&mut sys, 0).unwrap();
    let local_t = local.run(&mut sys, 0).unwrap().phases;
    print_row("local disk", &local_t);

    // All files from the same-cluster server, cold cache.
    let mut sys = fresh(Some(0));
    let near = AndrewBenchmark::new(
        TreeLocation::Vice("/vice/usr/bench/src".into()),
        TreeLocation::Vice("/vice/usr/bench/obj".into()),
    );
    near.install_source(&mut sys, 0).unwrap();
    let near_t = near.run(&mut sys, 0).unwrap().phases;
    print_row("vice, same cluster", &near_t);

    // All files from a server two bridge hops away.
    let mut sys = fresh(Some(1));
    let far = AndrewBenchmark::new(
        TreeLocation::Vice("/vice/usr/bench/src".into()),
        TreeLocation::Vice("/vice/usr/bench/obj".into()),
    );
    far.install_source(&mut sys, 0).unwrap();
    let far_t = far.run(&mut sys, 0).unwrap().phases;
    print_row("vice, cross cluster", &far_t);

    println!();
    println!(
        "remote penalty: same cluster {:+.0}%, cross cluster {:+.0}%  (paper: ~+80%)",
        (near_t.total().as_secs_f64() / local_t.total().as_secs_f64() - 1.0) * 100.0,
        (far_t.total().as_secs_f64() / local_t.total().as_secs_f64() - 1.0) * 100.0,
    );
}
