//! The surrogate server for low-function workstations (Section 3.3).
//!
//! "It would be desirable to allow workstations that fail to meet these
//! minimal resource requirements to access Vice ... Work is currently in
//! progress to build such a surrogate server for IBM PCs."
//!
//! A Sun workstation lends its Venus (and its whole-file cache) to a
//! cluster of IBM PCs over a cheap attachment LAN.
//!
//! ```text
//! cargo run --example surrogate_pc
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;

fn main() {
    let mut sys = ItcSystem::build(SystemConfig::small_campus(1, 2));
    sys.add_user("lab", "pw").unwrap();
    sys.create_user_volume("lab", 0).unwrap();
    sys.admin_install_file("/vice/usr/lab/dataset.csv", vec![b','; 120_000])
        .unwrap();

    // Workstation 0 hosts the surrogate; three PCs attach to it.
    sys.login(0, "lab", "pw").unwrap();
    sys.enable_surrogate(0).unwrap();
    let pcs: Vec<_> = (0..3).map(|_| sys.attach_pc(0).unwrap()).collect();
    println!("3 PCs attached to the surrogate on workstation 0");

    // The first PC read pulls the file from Vice into the host's cache...
    let fetches_before = sys.total_server_calls_of("fetch");
    let data = sys
        .pc_fetch(0, pcs[0], "/vice/usr/lab/dataset.csv")
        .unwrap();
    println!(
        "pc0 read {} bytes; Vice fetches so far: {}",
        data.len(),
        sys.total_server_calls_of("fetch") - fetches_before
    );

    // ...and the other PCs are served from that same cache: Vice sees no
    // further fetch traffic no matter how many PCs read the file.
    for (i, pc) in pcs.iter().enumerate().skip(1) {
        let d = sys.pc_fetch(0, *pc, "/vice/usr/lab/dataset.csv").unwrap();
        println!(
            "pc{i} read {} bytes; additional Vice fetches: {}",
            d.len(),
            sys.total_server_calls_of("fetch") - fetches_before - 1
        );
    }

    // A PC can write too — the surrogate stores through to Vice, so the
    // file is visible campus-wide.
    sys.pc_store(
        0,
        pcs[2],
        "/vice/usr/lab/results.txt",
        b"pc results".to_vec(),
    )
    .unwrap();
    sys.add_user("prof", "pw").unwrap();
    sys.login(1, "prof", "pw").unwrap();
    let seen = sys.fetch(1, "/vice/usr/lab/results.txt").unwrap();
    println!(
        "a real workstation sees the PC's file: {:?}",
        String::from_utf8_lossy(&seen)
    );

    // The cheap LAN is the bottleneck for the PCs, not Vice.
    for (i, pc) in pcs.iter().enumerate() {
        let st = sys.surrogate(0).unwrap().stats_of(*pc).unwrap();
        let t = sys.surrogate(0).unwrap().pc_time(*pc).unwrap();
        println!(
            "pc{i}: {} requests, {} bytes received, local clock {t}",
            st.requests, st.bytes_out
        );
    }
}
