//! Releasing system software with read-only replication.
//!
//! Section 3.2: "the creation of a read-only subtree is an atomic
//! operation, thus providing a convenient mechanism to support the orderly
//! release of new system software." System binaries are cloned and
//! replicated to every cluster; workstations fetch them from their nearest
//! server; a new release refreshes every replica atomically.
//!
//! ```text
//! cargo run --example release_binaries
//! ```

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;

fn main() {
    // Three clusters; the master copy of the system software lives on
    // server 0.
    let mut sys = ItcSystem::build(SystemConfig::small_campus(3, 2));
    sys.add_user("ops", "pw").unwrap();
    sys.admin_install_file("/vice/unix/sun/bin/emacs", b"emacs 17.64".to_vec())
        .unwrap();

    // Release 1: clone and replicate to every cluster.
    let everywhere: Vec<ServerId> = (0..3).map(ServerId).collect();
    sys.replicate_readonly("/vice", &everywhere).unwrap();
    println!("release 1 replicated to {} clusters", everywhere.len());

    // A workstation in cluster 2 fetches emacs — from its own cluster's
    // replica, not from the custodian across the backbone.
    let ws = sys.workstation_in_cluster(2);
    sys.login(ws, "ops", "pw").unwrap();
    let v1 = sys.fetch(ws, "/vice/unix/sun/bin/emacs").unwrap();
    println!(
        "cluster-2 workstation runs {:?}; fetches served by server2: {}, by custodian: {}",
        String::from_utf8_lossy(&v1),
        sys.server(ServerId(2)).stats().calls_of("fetch"),
        sys.server(ServerId(0)).stats().calls_of("fetch"),
    );

    // Cached copies from read-only subtrees "can never be invalid": warm
    // opens cost nothing at all.
    let calls_before = sys.metrics().total_calls();
    let _ = sys.fetch(ws, "/vice/unix/sun/bin/emacs").unwrap();
    println!(
        "warm open of a read-only binary made {} server calls",
        sys.metrics().total_calls() - calls_before
    );

    // The operator installs a new emacs in the master subtree. Replicas
    // still serve release 1 — updates to the master are invisible until
    // the next release is cut.
    sys.admin_install_file("/vice/unix/sun/bin/emacs", b"emacs 18.41".to_vec())
        .unwrap();
    let still_v1 = sys.fetch(ws, "/vice/unix/sun/bin/emacs").unwrap();
    println!(
        "before re-release, cluster 2 still sees {:?}",
        String::from_utf8_lossy(&still_v1)
    );

    // Release 2: one atomic refresh of every replica.
    sys.replicate_readonly("/vice", &everywhere).unwrap();
    // The workstation's cached copy belongs to the old clone; a fresh
    // workstation (or an expired cache) picks up the new release.
    let ws_fresh = sys.workstation_in_cluster(1);
    sys.login(ws_fresh, "ops", "pw").unwrap();
    let v2 = sys.fetch(ws_fresh, "/vice/unix/sun/bin/emacs").unwrap();
    println!(
        "after re-release, a fresh workstation sees {:?}",
        String::from_utf8_lossy(&v2)
    );
    assert_eq!(v2, b"emacs 18.41");
}
