//! Integration tests for the paper's extension features: the surrogate
//! server for low-function workstations (Section 3.3), the deferred
//! write-back alternative (Section 3.2), and traffic monitoring /
//! rebalancing (Section 3.6).

use itc_afs::core::config::{SystemConfig, WritePolicy};
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::SimTime;

// ---------------------------------------------------------------------
// Surrogate server
// ---------------------------------------------------------------------

#[test]
fn pcs_share_the_hosts_cache_and_write_through_to_vice() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 2));
    sys.add_user("lab", "pw").unwrap();
    sys.create_user_volume("lab", 0).unwrap();
    sys.admin_install_file("/vice/usr/lab/data", vec![1; 30_000])
        .unwrap();
    sys.login(0, "lab", "pw").unwrap();
    sys.enable_surrogate(0).unwrap();
    let pc_a = sys.attach_pc(0).unwrap();
    let pc_b = sys.attach_pc(0).unwrap();

    // One fetch from Vice serves both PCs.
    assert_eq!(
        sys.pc_fetch(0, pc_a, "/vice/usr/lab/data").unwrap().len(),
        30_000
    );
    let fetches = sys.total_server_calls_of("fetch");
    assert_eq!(
        sys.pc_fetch(0, pc_b, "/vice/usr/lab/data").unwrap().len(),
        30_000
    );
    // Check-on-open validates but does not refetch.
    assert_eq!(sys.total_server_calls_of("fetch"), fetches);

    // PC writes are campus-visible.
    sys.pc_store(0, pc_a, "/vice/usr/lab/out", b"pc wrote this".to_vec())
        .unwrap();
    sys.add_user("other", "pw").unwrap();
    sys.login(1, "other", "pw").unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/lab/out").unwrap(), b"pc wrote this");

    // stat/readdir work through the surrogate.
    assert_eq!(sys.pc_stat(0, pc_a, "/vice/usr/lab/out").unwrap().size, 13);
    let names: Vec<String> = sys
        .pc_readdir(0, pc_a, "/vice/usr/lab")
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert!(names.contains(&"out".to_string()));
}

#[test]
fn pc_attachment_lan_dominates_warm_reads() {
    // "perhaps at lower performance or convenience" — the cheap LAN is
    // the PC's bottleneck even when the host cache is warm.
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 1));
    sys.add_user("lab", "pw").unwrap();
    sys.create_user_volume("lab", 0).unwrap();
    sys.admin_install_file("/vice/usr/lab/big", vec![1; 300_000])
        .unwrap();
    sys.login(0, "lab", "pw").unwrap();
    // Warm the host cache directly.
    let _ = sys.fetch(0, "/vice/usr/lab/big").unwrap();

    sys.enable_surrogate(0).unwrap();
    let pc = sys.attach_pc(0).unwrap();
    let t0 = sys
        .surrogate(0)
        .unwrap()
        .pc_time(pc)
        .unwrap_or(SimTime::ZERO);
    let _ = sys.pc_fetch(0, pc, "/vice/usr/lab/big").unwrap();
    let elapsed = sys.surrogate(0).unwrap().pc_time(pc).unwrap() - t0;
    // 300 KB at 30 KB/s is 10 s of cheap-LAN transfer alone.
    assert!(elapsed > SimTime::from_secs(10), "{elapsed}");
}

// ---------------------------------------------------------------------
// Deferred write-back
// ---------------------------------------------------------------------

fn delayed_system(delay_secs: u64) -> ItcSystem {
    let mut sys = ItcSystem::build(SystemConfig {
        write_policy: WritePolicy::Delayed(SimTime::from_secs(delay_secs)),
        ..SystemConfig::prototype(1, 2)
    });
    sys.add_user("w", "pw").unwrap();
    sys.create_user_volume("w", 0).unwrap();
    sys.login(0, "w", "pw").unwrap();
    sys
}

#[test]
fn deferred_writes_coalesce_and_flush_on_deadline() {
    let mut sys = delayed_system(120);
    // Ten saves of the same document within the window: zero stores yet.
    for i in 0..10u8 {
        sys.store(0, "/vice/usr/w/doc", vec![i; 1_000]).unwrap();
    }
    assert_eq!(sys.total_server_calls_of("store"), 0);
    assert_eq!(sys.dirty_count(0), 1);
    // Locally, the latest contents are visible.
    assert_eq!(sys.fetch(0, "/vice/usr/w/doc").unwrap(), vec![9u8; 1_000]);

    // After the deadline passes, the next operation flushes exactly one
    // coalesced store.
    let later = sys.ws_time(0) + SimTime::from_secs(200);
    sys.advance_ws(0, later);
    let _ = sys.fetch(0, "/vice/usr/w/doc").unwrap();
    assert_eq!(sys.total_server_calls_of("store"), 1);
    assert_eq!(sys.dirty_count(0), 0);

    // And the flushed contents are the last write.
    sys.add_user("r", "pw").unwrap();
    sys.login(1, "r", "pw").unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/w/doc").unwrap(), vec![9u8; 1_000]);
}

#[test]
fn explicit_flush_commits_early() {
    let mut sys = delayed_system(3_600);
    sys.store(0, "/vice/usr/w/doc", b"unflushed".to_vec())
        .unwrap();
    assert_eq!(sys.total_server_calls_of("store"), 0);
    let flushed = sys.flush_workstation(0).unwrap();
    assert_eq!(flushed, 1);
    assert_eq!(sys.total_server_calls_of("store"), 1);
}

#[test]
fn crash_loses_exactly_the_unflushed_updates() {
    let mut sys = delayed_system(3_600);
    sys.store(0, "/vice/usr/w/committed", b"v1".to_vec())
        .unwrap();
    sys.flush_workstation(0).unwrap();
    sys.store(0, "/vice/usr/w/committed", b"v2-unflushed".to_vec())
        .unwrap();
    sys.store(0, "/vice/usr/w/never-seen", b"x".to_vec())
        .unwrap();

    let lost = sys.crash_workstation(0);
    assert_eq!(lost, 2);

    // Vice still has the committed version; the never-flushed file does
    // not exist at all.
    sys.add_user("r", "pw").unwrap();
    sys.login(1, "r", "pw").unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/w/committed").unwrap(), b"v1");
    assert!(sys.fetch(1, "/vice/usr/w/never-seen").is_err());
}

#[test]
fn store_on_close_never_loses_anything_on_crash() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 2));
    sys.add_user("w", "pw").unwrap();
    sys.create_user_volume("w", 0).unwrap();
    sys.login(0, "w", "pw").unwrap();
    sys.store(0, "/vice/usr/w/doc", b"safe".to_vec()).unwrap();
    assert_eq!(sys.crash_workstation(0), 0);
    sys.add_user("r", "pw").unwrap();
    sys.login(1, "r", "pw").unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/w/doc").unwrap(), b"safe");
}

// ---------------------------------------------------------------------
// Monitoring and rebalancing
// ---------------------------------------------------------------------

#[test]
fn monitor_detects_misplaced_volume_and_move_fixes_it() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.enable_monitoring();
    sys.add_user("nomad", "pw").unwrap();
    // Volume on server 0; the user works from cluster 1.
    sys.create_user_volume("nomad", 0).unwrap();
    sys.admin_install_file("/vice/usr/nomad/f", vec![1; 10_000])
        .unwrap();
    let ws = sys.workstation_in_cluster(1);
    sys.login(ws, "nomad", "pw").unwrap();
    for _ in 0..10 {
        let _ = sys.fetch(ws, "/vice/usr/nomad/f").unwrap();
    }

    assert!(sys.cross_cluster_fraction() > 0.5);
    let recs = sys.rebalancing_recommendations();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].subtree, "/vice/usr/nomad");
    assert_eq!(recs[0].to, ServerId(1));

    // Apply and re-measure: the traffic becomes intra-cluster.
    sys.move_volume(&recs[0].subtree, recs[0].to).unwrap();
    sys.reset_monitoring();
    for _ in 0..10 {
        let _ = sys.fetch(ws, "/vice/usr/nomad/f").unwrap();
    }
    assert_eq!(sys.cross_cluster_fraction(), 0.0);
    assert!(sys.rebalancing_recommendations().is_empty());
}

#[test]
fn move_volume_round_trips_as_the_user_migrates() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.enable_monitoring();
    sys.add_user("nomad", "pw").unwrap();
    sys.create_user_volume("nomad", 0).unwrap();
    sys.admin_install_file("/vice/usr/nomad/f", vec![1; 10_000])
        .unwrap();

    // The user decamps to cluster 1; the monitor says follow them.
    let far = sys.workstation_in_cluster(1);
    sys.login(far, "nomad", "pw").unwrap();
    for _ in 0..10 {
        let _ = sys.fetch(far, "/vice/usr/nomad/f").unwrap();
    }
    let recs = sys.rebalancing_recommendations();
    assert_eq!(recs.len(), 1);
    sys.move_volume(&recs[0].subtree, recs[0].to).unwrap();
    assert_eq!(sys.location_of("/vice/usr/nomad"), Some(ServerId(1)));

    // They move back; a fresh measurement epoch recommends the inverse
    // move, and applying it restores the original assignment.
    sys.reset_monitoring();
    let home = sys.workstation_in_cluster(0);
    sys.login(home, "nomad", "pw").unwrap();
    for _ in 0..10 {
        let _ = sys.fetch(home, "/vice/usr/nomad/f").unwrap();
    }
    let recs = sys.rebalancing_recommendations();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].subtree, "/vice/usr/nomad");
    assert_eq!(recs[0].from, ServerId(1));
    assert_eq!(recs[0].to, ServerId(0));
    sys.move_volume(&recs[0].subtree, recs[0].to).unwrap();
    assert_eq!(sys.location_of("/vice/usr/nomad"), Some(ServerId(0)));

    // The file survived both moves.
    assert_eq!(sys.fetch(home, "/vice/usr/nomad/f").unwrap().len(), 10_000);
}

#[test]
fn logout_flushes_deferred_writes() {
    let mut sys = delayed_system(3_600);
    sys.store(0, "/vice/usr/w/doc", b"edited then logged out".to_vec())
        .unwrap();
    assert_eq!(sys.total_server_calls_of("store"), 0);
    sys.logout(0);
    assert_eq!(sys.total_server_calls_of("store"), 1);
    // Another user sees the flushed contents.
    sys.add_user("r", "pw").unwrap();
    sys.login(1, "r", "pw").unwrap();
    assert_eq!(
        sys.fetch(1, "/vice/usr/w/doc").unwrap(),
        b"edited then logged out"
    );
}

// ---------------------------------------------------------------------
// Availability: machine failures affect only "small groups of users"
// ---------------------------------------------------------------------

#[test]
fn server_failure_is_contained_to_its_users() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.create_user_volume("a", 0).unwrap();
    sys.create_user_volume("b", 1).unwrap();
    sys.admin_install_file("/vice/usr/a/f", b"on server 0".to_vec())
        .unwrap();
    sys.admin_install_file("/vice/usr/b/f", b"on server 1".to_vec())
        .unwrap();
    let ws_a = sys.workstation_in_cluster(0);
    let ws_b = sys.workstation_in_cluster(1);
    sys.login(ws_a, "a", "pw").unwrap();
    sys.login(ws_b, "b", "pw").unwrap();

    // Server 1 goes down. Users of server 0 are entirely unaffected...
    sys.set_server_online(itc_afs::core::proto::ServerId(1), false);
    assert_eq!(sys.fetch(ws_a, "/vice/usr/a/f").unwrap(), b"on server 0");
    // ...while cold access to server 1's files fails (after a timeout).
    let t0 = sys.ws_time(ws_b);
    let err = sys.fetch(ws_b, "/vice/usr/b/f").unwrap_err();
    assert!(format!("{err}").contains("unreachable"), "{err}");
    assert!(
        sys.ws_time(ws_b) - t0 >= SimTime::from_secs(15),
        "timeout charged"
    );

    // Recovery restores service.
    sys.set_server_online(itc_afs::core::proto::ServerId(1), true);
    assert_eq!(sys.fetch(ws_b, "/vice/usr/b/f").unwrap(), b"on server 1");
}

#[test]
fn cached_copies_survive_a_custodian_outage() {
    // A user keeps working on his cached files while his custodian is
    // down — whole-file caching is itself an availability mechanism.
    let mut sys = ItcSystem::build(SystemConfig {
        validation: itc_afs::sim::ValidationMode::Callback,
        ..SystemConfig::prototype(1, 1)
    });
    sys.add_user("u", "pw").unwrap();
    sys.create_user_volume("u", 0).unwrap();
    sys.admin_install_file("/vice/usr/u/f", b"cached".to_vec())
        .unwrap();
    sys.login(0, "u", "pw").unwrap();
    let _ = sys.fetch(0, "/vice/usr/u/f").unwrap();

    sys.set_server_online(itc_afs::core::proto::ServerId(0), false);
    // Callback-valid cache entries keep working with zero traffic.
    assert_eq!(sys.fetch(0, "/vice/usr/u/f").unwrap(), b"cached");
}

#[test]
fn readonly_replicas_keep_binaries_available_through_an_outage() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.add_user("u", "pw").unwrap();
    sys.admin_install_file("/vice/unix/sun/bin/cc", b"compiler".to_vec())
        .unwrap();
    let everywhere = [
        itc_afs::core::proto::ServerId(0),
        itc_afs::core::proto::ServerId(1),
    ];
    sys.replicate_readonly("/vice", &everywhere).unwrap();

    // The custodian of /vice (server 0) dies; a cluster-1 user cold-reads
    // the compiler anyway, from his local replica.
    sys.set_server_online(itc_afs::core::proto::ServerId(0), false);
    let ws = sys.workstation_in_cluster(1);
    sys.login(ws, "u", "pw").unwrap();
    assert_eq!(sys.fetch(ws, "/vice/unix/sun/bin/cc").unwrap(), b"compiler");

    // Even a cluster-0 user fails over to the surviving replica (slower:
    // one timeout plus a cross-cluster fetch).
    let ws0 = sys.workstation_in_cluster(0);
    // His home server is down, so the location query itself must go...
    // nowhere: the home server answers location queries. This is the
    // honest 1985 behavior — a user whose home server is down needs the
    // hint already cached. Pre-seed by logging in before the outage:
    sys.set_server_online(itc_afs::core::proto::ServerId(0), true);
    sys.add_user("v", "pw").unwrap();
    sys.login(ws0, "v", "pw").unwrap();
    let _ = sys.fetch(ws0, "/vice/unix/sun/bin/cc").unwrap(); // caches + hints
    sys.set_server_online(itc_afs::core::proto::ServerId(0), false);
    // Warm cache in callback...? prototype check-on-open revalidates — the
    // validation goes to the nearest replica (server 0, down), then fails
    // over to server 1.
    assert_eq!(
        sys.fetch(ws0, "/vice/unix/sun/bin/cc").unwrap(),
        b"compiler"
    );
}
