//! Day-in-the-life storm scenarios: quantitative bounds, flight-recorder
//! coverage, bit-reproducibility, and the before/after proof that the two
//! shipped fixes (callback-break batching, jittered reconnect backoff)
//! move the knee.
//!
//! Each scenario in `crates/workload/src/scenario/` is a scripted storm
//! over one deterministic `ItcSystem`: same seed, same virtual-time
//! interleaving, same attribution JSONL byte for byte. The bounds below
//! were captured from those runs; if one trips, the storm's timing or the
//! event pipeline drifted — diagnose with the frozen anomaly dumps before
//! re-capturing.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::core::trace::{parse_span_line, render_span, span_field_str, span_field_u64};
use itc_afs::sim::{FaultPlan, SimTime};
use itc_workload::scenario::{
    callback_storm, classify_failure, login_storm, release_push, thundering_herd,
};
use itc_workload::{
    CallbackStormConfig, LoginStormConfig, ReleasePushConfig, ThunderingHerdConfig,
};

// ---------------------------------------------------------------------
// Per-storm quantitative bounds + flight-recorder coverage
// ---------------------------------------------------------------------

/// The Monday-9am login storm is survivable: nobody fails, the tail stays
/// under half a minute, and the saturated first minute freezes a
/// `utilization_peak` dump.
#[test]
fn login_storm_survives_within_bounds() {
    let (_, r) = login_storm::run(&LoginStormConfig::small()).unwrap();
    assert_eq!(r.counts.failed, 0, "login storm must not fail anyone");
    assert_eq!(r.timeouts, 0, "no RPC timeouts in a fault-free storm");
    assert_eq!(r.retries, 0);
    assert!(
        r.p99_s < 25.0,
        "login-storm p99 blew the bound: {:.3}s",
        r.p99_s
    );
    assert!(
        r.anomaly_count("utilization_peak") >= 1,
        "the saturated minute must freeze a utilization_peak dump; got {:?}",
        r.anomalies
    );
}

/// The release push revalidates from the nearest read-only replica, so the
/// storm splits across both cluster servers, nobody fails, and the
/// saturated minutes freeze `utilization_peak` dumps.
#[test]
fn release_push_splits_load_and_freezes_peaks() {
    let (_, r) = release_push::run(&ReleasePushConfig::small()).unwrap();
    assert_eq!(r.counts.failed, 0, "release push must not fail anyone");
    assert_eq!(r.timeouts, 0);
    assert!(
        r.p99_s < 30.0,
        "release-push p99 blew the bound: {:.3}s",
        r.p99_s
    );
    assert_eq!(
        r.servers.len(),
        2,
        "replica reads must reach both cluster servers"
    );
    assert!(r.servers.iter().all(|row| row.calls > 0));
    assert!(r.anomaly_count("utilization_peak") >= 1);
}

/// The callback-break storm: batching break notifications per recipient
/// shaves server CPU at the saturation point, and the whole backlog behind
/// it moves — p99 and aggregate queueing both drop, µs-exactly. Both runs
/// freeze the scripted mid-storm `timed_out` dump.
#[test]
fn callback_storm_batching_moves_the_knee() {
    let (_, base) = callback_storm::run(&CallbackStormConfig::small()).unwrap();
    let (_, fixed) = callback_storm::run(&CallbackStormConfig::small().batched()).unwrap();

    // Same workload either way: the fix changes message count and CPU
    // charge, never which calls happen.
    assert_eq!(base.counts.ops, fixed.counts.ops);
    assert_eq!(base.calls, fixed.calls);
    assert_eq!(
        base.counts.failed, 1,
        "exactly the scripted brownout victim"
    );
    assert_eq!(fixed.counts.failed, 1);
    assert_eq!(base.anomaly_count("timed_out"), 1);
    assert_eq!(fixed.anomaly_count("timed_out"), 1);

    let queueing = |r: &itc_workload::ScenarioReport| -> u64 {
        r.servers.iter().map(|row| row.queueing_us).sum()
    };
    assert!(
        fixed.p99_s < base.p99_s,
        "batching must improve p99: {:.3}s !< {:.3}s",
        fixed.p99_s,
        base.p99_s
    );
    assert!(
        base.p99_s - fixed.p99_s > 0.1,
        "p99 improvement too small to be the batching effect: {:.4}s",
        base.p99_s - fixed.p99_s
    );
    assert!(
        queueing(&fixed) < queueing(&base),
        "batching must shave aggregate queueing: {} !< {}",
        queueing(&fixed),
        queueing(&base)
    );
}

/// The post-restart thundering herd: with the jittered exponential
/// reconnect backoff, failed probes collapse (each one burns a full RPC
/// timeout against the dead server) and the recovery tail shortens. The
/// lossy merged plan also exercises retry and the replay cache — attempts
/// exceed calls and the wasted component is non-zero.
#[test]
fn thundering_herd_backoff_collapses_the_probe_storm() {
    let (_, base) = thundering_herd::run(&ThunderingHerdConfig::small()).unwrap();
    let (_, fixed) = thundering_herd::run(&ThunderingHerdConfig::small().with_backoff()).unwrap();

    assert!(base.counts.failed > 0, "the outage must be felt");
    assert!(
        fixed.counts.failed * 3 < base.counts.failed * 2,
        "backoff must cut failed probes by at least a third: {} vs {}",
        fixed.counts.failed,
        base.counts.failed
    );
    assert!(
        base.p99_s - fixed.p99_s > 5.0,
        "backoff must shorten the recovery tail: {:.3}s vs {:.3}s",
        base.p99_s,
        fixed.p99_s
    );
    for r in [&base, &fixed] {
        assert!(
            r.anomaly_count("unreachable") >= 1,
            "every failed probe freezes an unreachable dump"
        );
        assert!(r.attempts > r.calls, "the lossy plan must force retries");
        assert!(r.timeouts > 0);
        assert!(r.servers.iter().any(|row| row.wasted_us > 0));
    }
    // Fewer probes means fewer frozen unreachable dumps.
    assert!(fixed.anomaly_count("unreachable") < base.anomaly_count("unreachable"));
}

// ---------------------------------------------------------------------
// Golden pin (style of tests/golden_timings.rs)
// ---------------------------------------------------------------------

/// Exact capture of the small login storm. Every number below is a
/// virtual-time observable of the seeded run; if one drifts, the scenario
/// DSL or the event pipeline changed behavior — fix that, do not
/// re-capture lightly.
#[test]
fn scenario_login_storm_small() {
    let (_, r) = login_storm::run(&LoginStormConfig::small()).unwrap();
    let jsonl = r.jsonl();
    let mut lines = jsonl.lines();
    assert_eq!(
        lines.next().unwrap(),
        "{\"scenario\":\"login_storm\",\"seed\":4241,\"ops\":160,\"failed\":0,\
         \"unreachable\":0,\"timed_out\":0,\"offline\":0,\"calls\":160,\"attempts\":160,\
         \"retries\":0,\"timeouts\":0,\"p50_us\":10339000,\"p90_us\":17987809,\
         \"p99_us\":20270809,\"max_us\":20543209,\"max_queue_cpu_us\":19381934,\
         \"queue_high_water\":1,\"finished_us\":242800595}"
    );
    assert_eq!(
        lines.next().unwrap(),
        "{\"server\":0,\"calls\":160,\"queueing_us\":1397630215,\"service_us\":125120000,\
         \"network_us\":42265184,\"wasted_us\":0,\"p50_us\":10339000,\"p90_us\":17987809}"
    );
    assert_eq!(r.dumps.len(), 1);
    assert!(
        r.dumps[0].0.contains("utilization_peak"),
        "dump name drifted: {}",
        r.dumps[0].0
    );
}

// ---------------------------------------------------------------------
// Bit-reproducibility
// ---------------------------------------------------------------------

/// Same seed ⇒ identical attribution JSONL, byte for byte, for every
/// storm. This is the determinism contract the scenario DSL documents:
/// seeded randomness only, virtual-time interleaving, sorted fan-out.
#[test]
fn storms_are_bit_reproducible() {
    let (_, a) = login_storm::run(&LoginStormConfig::small()).unwrap();
    let (_, b) = login_storm::run(&LoginStormConfig::small()).unwrap();
    assert_eq!(a.jsonl(), b.jsonl(), "login storm drifted between runs");

    let (_, a) = release_push::run(&ReleasePushConfig::small()).unwrap();
    let (_, b) = release_push::run(&ReleasePushConfig::small()).unwrap();
    assert_eq!(a.jsonl(), b.jsonl(), "release push drifted between runs");

    let (_, a) = callback_storm::run(&CallbackStormConfig::small()).unwrap();
    let (_, b) = callback_storm::run(&CallbackStormConfig::small()).unwrap();
    assert_eq!(a.jsonl(), b.jsonl(), "callback storm drifted between runs");

    let (_, a) = thundering_herd::run(&ThunderingHerdConfig::small()).unwrap();
    let (_, b) = thundering_herd::run(&ThunderingHerdConfig::small()).unwrap();
    assert_eq!(a.jsonl(), b.jsonl(), "thundering herd drifted between runs");
}

// ---------------------------------------------------------------------
// Anomaly dumps round-trip through the offline re-renderer
// ---------------------------------------------------------------------

/// Every span line of every frozen dump parses back through the offline
/// re-renderer's `parse_span_line` (the function the `trace` bin applies
/// to exported files) and re-renders to the identical bytes; headers name
/// the expected anomaly. The login-storm dump additionally makes the trip
/// through the filesystem via `export_anomaly_dumps`.
#[test]
fn anomaly_dumps_round_trip_through_the_offline_renderer() {
    let check_round_trip = |sys: &ItcSystem, expected_reason: &str| {
        let dumps = sys.render_anomaly_dumps();
        assert!(!dumps.is_empty());
        let mut saw_expected = false;
        for (name, text) in &dumps {
            let mut lines = text.lines();
            let header = lines.next().expect("dump has a header line");
            let reason = span_field_str(header, "reason").expect("header names a reason");
            // `utilization_peak` renders with its percentage, e.g.
            // "utilization_peak(98%)" — match on the label prefix.
            saw_expected |= reason.starts_with(expected_reason);
            assert!(name.ends_with(".jsonl"));
            let span_count = span_field_u64(header, "spans").unwrap();
            let mut parsed = 0u64;
            for line in lines {
                let span = parse_span_line(line)
                    .unwrap_or_else(|| panic!("unparseable span line in {name}: {line}"));
                assert_eq!(
                    render_span(&span),
                    line,
                    "span did not round-trip byte-identically in {name}"
                );
                parsed += 1;
            }
            assert_eq!(parsed, span_count, "header span count lies in {name}");
        }
        assert!(
            saw_expected,
            "no dump froze the expected reason {expected_reason:?}"
        );
    };

    let (sys, _) = login_storm::run(&LoginStormConfig::small()).unwrap();
    check_round_trip(&sys, "utilization_peak");

    // Through the filesystem: export, re-read, same bytes.
    let dir = std::env::temp_dir().join(format!("itc-scenario-dumps-{}", std::process::id()));
    let paths = sys.export_anomaly_dumps(&dir).unwrap();
    let rendered = sys.render_anomaly_dumps();
    assert_eq!(paths.len(), rendered.len());
    for (path, (name, text)) in paths.iter().zip(&rendered) {
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), name);
        assert_eq!(&std::fs::read_to_string(path).unwrap(), text);
    }
    std::fs::remove_dir_all(&dir).ok();

    let (sys, _) = release_push::run(&ReleasePushConfig::small()).unwrap();
    check_round_trip(&sys, "utilization_peak");
    let (sys, _) = callback_storm::run(&CallbackStormConfig::small()).unwrap();
    check_round_trip(&sys, "timed_out");
    let (sys, _) = thundering_herd::run(&ThunderingHerdConfig::small()).unwrap();
    check_round_trip(&sys, "unreachable");
}

// ---------------------------------------------------------------------
// Replay cache across a server epoch bump (property test)
// ---------------------------------------------------------------------

/// Under a duplicate-heavy lossy network spanning a crash/restart, the
/// client must never read data older than the last store it saw succeed:
/// duplicated replies are discarded by the channel sequence check, the
/// write-ahead journal keeps every acknowledged mutation across the
/// crash, and the epoch bump invalidates suspect cache entries instead of
/// serving them. A store that errors out is allowed to have either
/// happened or not (at-most-once), and the versions the server reports
/// never regress.
#[test]
fn replay_cache_never_serves_stale_across_epoch_bump() {
    let mut dup_total = 0u64;
    let mut drop_total = 0u64;
    for seed in [7u64, 1985, 0xeb0c] {
        let mut cfg = SystemConfig::revised(1, 1);
        cfg.seed = seed;
        let mut sys = ItcSystem::build(cfg);
        sys.add_user("u000", "pw-u000").unwrap();
        sys.create_user_volume("u000", 0).unwrap();
        sys.login(0, "u000", "pw-u000").unwrap();
        let path = "/vice/usr/u000/f.dat";
        sys.store(0, path, vec![0u8; 1000]).unwrap();

        let t_crash = sys.ws_time(0) + SimTime::from_secs(60);
        let mut plan = FaultPlan::new(seed ^ 0xd00f)
            .drop_request_prob(0.10)
            .drop_reply_prob(0.20)
            .duplicate_reply_prob(0.35);
        plan.schedule_crash(0, t_crash);
        plan.schedule_restart(0, t_crash + SimTime::from_secs(45));
        sys.install_faults(plan);

        // `confirmed` is the last store the client saw succeed; an
        // errored store leaves the file in one of two states until the
        // next successful read resolves it.
        let mut confirmed: u8 = 0;
        let mut in_doubt: Option<u8> = None;
        let mut last_version: u64 = 0;
        for i in 1..=40u8 {
            let at = sys.ws_time(0) + SimTime::from_secs(7);
            sys.advance_ws(0, at);
            match sys.store(0, path, vec![i; 1000 + usize::from(i)]) {
                Ok(()) => {
                    confirmed = i;
                    in_doubt = None;
                }
                Err(e) => {
                    assert!(
                        classify_failure(&e).is_some(),
                        "seed {seed}: structural error from store #{i}: {e:?}"
                    );
                    in_doubt = Some(i);
                }
            }
            match sys.fetch(0, path) {
                Ok(bytes) => {
                    let tag = bytes[0];
                    let acceptable =
                        tag == confirmed || in_doubt.map(|d| tag == d).unwrap_or(false);
                    assert!(
                        acceptable,
                        "seed {seed}: stale read after store #{i}: got tag {tag}, \
                         confirmed {confirmed}, in doubt {in_doubt:?}"
                    );
                    // A read resolves the in-doubt store one way or the
                    // other.
                    confirmed = tag;
                    in_doubt = None;
                    let v = sys.stat(0, path).unwrap().version;
                    assert!(
                        v >= last_version,
                        "seed {seed}: version regressed {last_version} -> {v}"
                    );
                    last_version = v;
                }
                Err(e) => {
                    assert!(
                        classify_failure(&e).is_some(),
                        "seed {seed}: structural error from fetch #{i}: {e:?}"
                    );
                }
            }
        }
        assert!(
            sys.server_epoch(ServerId(0)) >= 1,
            "seed {seed}: the crash must bump the server epoch"
        );
        dup_total += sys.fault_stats().replies_duplicated;
        drop_total += sys.fault_stats().replies_dropped;
        assert_eq!(
            sys.call_stats().duplicates_ignored,
            sys.fault_stats().replies_duplicated,
            "seed {seed}: every duplicated reply must be discarded, not served"
        );
    }
    assert!(dup_total > 0, "the plans must actually duplicate replies");
    assert!(drop_total > 0, "the plans must actually drop replies");
}
