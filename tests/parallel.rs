//! Parallel-determinism regression: the conservative-PDES engine must
//! produce bit-identical timelines to the sequential reference executor
//! on every workload shape — single-cluster (zero lookahead to exploit),
//! the replicated multi-cluster day, an all-cross-bridge storm, and a
//! server crash/restart concurrent with in-flight bridge traffic — and
//! identical interleavings across repeated runs of the same seed.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::protect::{AccessList, Rights};
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::parallel::{ClusterMask, RunMode, WsDriver};
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{FaultPlan, SimTime};
use itc_afs::workload::scenario::{login_storm, OpCounts};
use itc_afs::workload::{run_day_drivers, DayConfig, LoginStormConfig, ScriptDriver};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Folds every virtual-time observable of a finished system into one
/// string: per-workstation clocks, the global clock, call/event/fault
/// counters, and the per-server call tallies. Any divergence between two
/// schedules of the same workload shows up here.
fn fingerprint(sys: &ItcSystem) -> String {
    let mut fp = String::new();
    for ws in 0..sys.workstation_count() {
        writeln!(fp, "ws {ws} t={}", sys.ws_time(ws).as_micros()).unwrap();
    }
    writeln!(fp, "clock {}", sys.now().as_micros()).unwrap();
    writeln!(fp, "calls {}", sys.metrics().total_calls()).unwrap();
    let cs = sys.call_stats();
    writeln!(
        fp,
        "rpc attempts={} retries={} timeouts={} dups={} failures={}",
        cs.attempts, cs.retries, cs.timeouts, cs.duplicates_ignored, cs.failures
    )
    .unwrap();
    let es = sys.event_stats();
    writeln!(
        fp,
        "events scheduled={} executed={} cancelled={}",
        es.scheduled, es.executed, es.cancelled
    )
    .unwrap();
    writeln!(fp, "faults {}", sys.fault_stats().total()).unwrap();
    for s in 0..sys.server_count() {
        let srv = sys.server(ServerId(s as u32));
        writeln!(fp, "server {s} calls={}", srv.stats().total_calls()).unwrap();
    }
    fp
}

fn day_fingerprint(cfg: SystemConfig, day: &DayConfig, mode: RunMode) -> (u64, String) {
    let mut sys = ItcSystem::build(cfg);
    let report = run_day_drivers(&mut sys, day, mode).expect("day runs");
    (report.ops, fingerprint(&sys))
}

#[test]
fn single_cluster_degenerates_to_sequential() {
    // One cluster: no lookahead to exploit, every mask is the same
    // singleton, so the parallel scheduler serializes — and must land on
    // exactly the sequential timeline.
    let day = DayConfig {
        duration: SimTime::from_mins(5),
        ..DayConfig::short()
    };
    let seq = day_fingerprint(SystemConfig::prototype(1, 4), &day, RunMode::Sequential);
    let par = day_fingerprint(SystemConfig::prototype(1, 4), &day, RunMode::Parallel(4));
    assert_eq!(seq, par);
}

#[test]
fn multi_cluster_day_parallel_is_bit_identical() {
    let day = DayConfig {
        duration: SimTime::from_mins(5),
        replicate_binaries: true,
        ..DayConfig::short()
    };
    let seq = day_fingerprint(SystemConfig::prototype(4, 2), &day, RunMode::Sequential);
    for threads in [2, 4, 8] {
        let par = day_fingerprint(
            SystemConfig::prototype(4, 2),
            &day,
            RunMode::Parallel(threads),
        );
        assert_eq!(seq, par, "divergence at {threads} threads");
    }
}

#[test]
fn identical_interleavings_across_three_runs_per_seed() {
    // The satellite-2 guarantee: with HashMap iteration scrubbed from
    // every event-emitting path, three runs of the same seed produce the
    // same event interleaving — in both executors.
    for seed in [7u64, 1985] {
        for mode in [RunMode::Sequential, RunMode::Parallel(4)] {
            let day = DayConfig {
                duration: SimTime::from_mins(3),
                seed,
                ..DayConfig::short()
            };
            let runs: Vec<_> = (0..3)
                .map(|_| {
                    let cfg = SystemConfig {
                        seed,
                        ..SystemConfig::prototype(2, 2)
                    };
                    day_fingerprint(cfg, &day, mode)
                })
                .collect();
            assert_eq!(runs[0], runs[1], "seed {seed} {mode:?} run 0 vs 1");
            assert_eq!(runs[1], runs[2], "seed {seed} {mode:?} run 1 vs 2");
        }
    }
}

/// Builds a 4-cluster system with one shared read-only working set and
/// one private store target per cluster, plus scripted drivers whose
/// every op crosses the bridge: each workstation round-robins fetches of
/// the *other* clusters' shared files and stores into its own cluster's
/// private area. Masks are the true two-cluster footprints, so the
/// admission rule has real cross-cluster conflicts to order.
fn cross_bridge_storm(mode: RunMode) -> (u64, String) {
    const CLUSTERS: usize = 4;
    const PER: usize = 3;
    const ROUNDS: usize = 6;
    let cfg = SystemConfig {
        seed: 0xb81d,
        ..SystemConfig::revised(CLUSTERS as u32, PER as u32)
    };
    let mut sys = ItcSystem::build(cfg);

    let mut acl = AccessList::new();
    acl.grant("anyuser", Rights::ALL.minus(Rights::ADMINISTER));
    for c in 0..CLUSTERS {
        sys.create_volume(
            &format!("bridge.c{c}"),
            &format!("/vice/bridge{c}"),
            ServerId(c as u32),
            acl.clone(),
        )
        .expect("volume");
        // The shared files remote workstations fetch (never re-stored, so
        // no callback break ever escapes the declared two-cluster mask).
        for f in 0..PER {
            sys.admin_install_file(&format!("/vice/bridge{c}/shared{f}"), vec![0x42; 18_000])
                .expect("install");
        }
        // Per-workstation private directories: stores land here, not in
        // the volume root, so they never break the root-directory
        // callbacks that remote fetchers hold.
        for w in 0..PER {
            sys.admin_mkdir_p(&format!("/vice/bridge{c}/p{}", c * PER + w))
                .expect("mkdir");
        }
    }
    let n = CLUSTERS * PER;
    for ws in 0..n {
        let user = format!("x{ws:02}");
        sys.add_user(&user, "pw").expect("user");
        sys.login(ws, &user, "pw").expect("login");
    }

    let counts = Arc::new(Mutex::new(OpCounts::default()));
    let drivers = (0..n)
        .map(|ws| {
            let home = ws / PER;
            let mut d = ScriptDriver::new(ws, sys.ws_time(ws), Arc::clone(&counts));
            for r in 0..ROUNDS {
                let target = (home + 1 + r % (CLUSTERS - 1)) % CLUSTERS;
                let mask = ClusterMask::of(home).union(ClusterMask::of(target));
                let path = format!("/vice/bridge{target}/shared{}", (ws + r) % PER);
                d.push(mask, move |ops| ops.fetch(ws, &path).map(|_| ()));
                let own = format!("/vice/bridge{home}/p{ws}/w{r}");
                d.push(ClusterMask::of(home), move |ops| {
                    ops.store(ws, &own, vec![ws as u8; 9_000])
                });
            }
            (ws, Box::new(d) as Box<dyn WsDriver>)
        })
        .collect();
    let ops = sys.run_drivers(drivers, mode).expect("storm runs");
    assert_eq!(counts.lock().unwrap().failed, 0);
    (ops, fingerprint(&sys))
}

#[test]
fn all_cross_bridge_storm_is_bit_identical() {
    let seq = cross_bridge_storm(RunMode::Sequential);
    let par = cross_bridge_storm(RunMode::Parallel(4));
    assert_eq!(seq, par);
    assert!(seq.0 > 100, "storm must execute real work: {} ops", seq.0);
}

/// Crash/restart of server 1 while bridge traffic is in flight: a fault
/// plan serializes the schedule (every driver widens to all clusters), so
/// the scheduled Crash/Restart/Salvage events interleave with the ops
/// exactly as in the sequential run.
fn crash_during_bridge_traffic(mode: RunMode) -> (u64, String) {
    const CLUSTERS: usize = 3;
    const PER: usize = 2;
    let cfg = SystemConfig {
        seed: 0xc4a5,
        ..SystemConfig::revised(CLUSTERS as u32, PER as u32)
    };
    let mut sys = ItcSystem::build(cfg);

    let mut acl = AccessList::new();
    acl.grant("anyuser", Rights::ALL.minus(Rights::ADMINISTER));
    for c in 0..CLUSTERS {
        sys.create_volume(
            &format!("storm.c{c}"),
            &format!("/vice/storm{c}"),
            ServerId(c as u32),
            acl.clone(),
        )
        .expect("volume");
        for f in 0..4 {
            sys.admin_install_file(&format!("/vice/storm{c}/f{f}"), vec![0x5a; 12_000])
                .expect("install");
        }
    }
    let n = CLUSTERS * PER;
    for ws in 0..n {
        let user = format!("y{ws}");
        sys.add_user(&user, "pw").expect("user");
        sys.login(ws, &user, "pw").expect("login");
    }

    // Server 1 crashes at 2s (mid-storm) and restarts at 6s; stores to it
    // before the crash leave journal work for the restart salvage.
    let mut plan = FaultPlan::new(9);
    plan.schedule_crash(1, SimTime::from_secs(2));
    plan.schedule_restart(1, SimTime::from_secs(6));
    sys.install_faults(plan);

    let all = ClusterMask::all(CLUSTERS);
    let counts = Arc::new(Mutex::new(OpCounts::default()));
    let drivers = (0..n)
        .map(|ws| {
            let home = ws / PER;
            let mut d = ScriptDriver::new(ws, sys.ws_time(ws), Arc::clone(&counts));
            for r in 0..10usize {
                let target = (home + 1 + r % (CLUSTERS - 1)) % CLUSTERS;
                let path = format!("/vice/storm{target}/f{}", r % 4);
                // All-cluster masks: the installed fault plan means any
                // op may pump a Crash/Restart/Salvage event from any
                // cluster's calendar.
                d.push(all, move |ops| ops.fetch(ws, &path).map(|_| ()));
                let own = format!("/vice/storm{home}/w{ws}-{r}");
                d.push(all, move |ops| {
                    // Stores to the crashed custodian fail; that is the
                    // point — the failure pattern must be identical.
                    let _ = ops.store(ws, &own, vec![ws as u8; 6_000]);
                    Ok(())
                });
            }
            (ws, Box::new(d) as Box<dyn WsDriver>)
        })
        .collect();
    let ops = sys.run_drivers(drivers, mode).expect("storm runs");
    (ops, fingerprint(&sys))
}

#[test]
fn crash_restart_concurrent_with_bridge_traffic_is_bit_identical() {
    let seq = crash_during_bridge_traffic(RunMode::Sequential);
    let par = crash_during_bridge_traffic(RunMode::Parallel(4));
    assert_eq!(seq, par);
    assert!(
        seq.1.contains("faults"),
        "fingerprint records fault counters"
    );
}

#[test]
fn login_storm_parallel_matches_sequential_jsonl() {
    let cfg = LoginStormConfig::parallel();
    let (_, seq) = login_storm::run_mode(&cfg, RunMode::Sequential).expect("storm");
    let (_, par) = login_storm::run_mode(&cfg, RunMode::Parallel(4)).expect("storm");
    assert_eq!(seq.jsonl(), par.jsonl());
    assert_eq!(seq.counts.failed, 0, "the storm queues but does not fail");
    assert!(seq.counts.ops > 0);
}
