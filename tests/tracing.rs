//! Acceptance tests for causal request tracing, latency attribution, and
//! the anomaly flight recorder.
//!
//! The contract under test (DESIGN.md §11):
//!
//! 1. Tracing is observation-only: the golden-timings captures and a
//!    fault-heavy fingerprint are bit-identical with tracing on or off.
//! 2. Every completed call's span components sum *exactly* (in integer
//!    microseconds) to its end-to-end virtual latency.
//! 3. A trace id minted at the client is carried on the wire and appears
//!    verbatim in the server-side spans of the same call.
//! 4. A seeded timeout produces a deterministic flight-recorder dump
//!    naming the implicated server; an offline volume produces one naming
//!    the volume; a saturated minute produces a utilization-peak dump.
//! 5. Anomaly export is byte-identical across two same-seed runs.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{AnomalyReason, FaultPlan, SimTime, SpanClass, TraceId};
use itc_workload::day::{run_day, DayConfig};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// 1. Zero perturbation
// ---------------------------------------------------------------------

/// The short golden day re-run with tracing enabled: every pre-refactor
/// capture from `tests/golden_timings.rs` must hold bit-identically.
#[test]
fn golden_short_day_is_bit_identical_with_tracing_enabled() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::prototype(1, 1)
    };
    let (sys, report) = run_day(cfg, &DayConfig::short()).unwrap();
    let m = &report.metrics;

    assert_eq!(report.ops, 86);
    assert_eq!(sys.now().as_micros(), 1_786_043_255);
    assert_eq!(m.total_calls(), 85);
    assert_eq!(sys.total_server_calls_of("fetch"), 18);
    assert_eq!(sys.total_server_calls_of("store"), 2);
    assert_eq!(sys.total_server_calls_of("validate"), 37);
    assert_eq!(sys.total_server_calls_of("getstatus"), 21);
    assert_eq!(sys.total_server_calls_of("getcustodian"), 2);
    assert_eq!(m.cache.hits, 37);
    assert_eq!(m.cache.misses, 18);
    assert_eq!(sys.call_stats().attempts, 85);
    assert_eq!(
        sys.server(ServerId(0)).cpu().busy_total().as_micros(),
        61_615_000
    );

    // And tracing actually observed the day: one trace per attempt, spans
    // at every hop, attribution over every completed call.
    let ts = sys.trace_stats();
    assert_eq!(ts.traces, 85);
    assert!(ts.spans >= 5 * 85, "five hops per fault-free call");
    assert!(m.attribution.is_some(), "metrics carry attribution");
}

/// The scripted 2-cluster trace with tracing enabled: per-op virtual
/// timestamps are unchanged to the microsecond.
#[test]
fn golden_scripted_ops_are_bit_identical_with_tracing_enabled() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("satya", "pw").unwrap();
    sys.create_user_volume("satya", 1).unwrap();
    sys.login(0, "satya", "pw").unwrap();

    let mut trace = Vec::new();
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.store(0, "/vice/usr/shared/a.txt", vec![7u8; 12_000])
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    let d = sys.fetch(0, "/vice/usr/shared/a.txt").unwrap();
    assert_eq!(d.len(), 12_000);
    trace.push(sys.ws_time(0).as_micros());
    let st = sys.stat(0, "/vice/usr/shared/a.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    assert_eq!(st.version, 1);
    sys.store(0, "/vice/usr/satya/far.txt", vec![1u8; 3000])
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    let _ = sys.fetch(0, "/vice/usr/satya/far.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.rename(0, "/vice/usr/shared/a.txt", "/vice/usr/shared/b.txt")
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.unlink(0, "/vice/usr/shared/b.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());

    assert_eq!(
        trace,
        [
            2_732_411, 4_648_347, 5_812_017, 6_737_312, 9_533_986, 10_711_669, 12_002_905,
            12_708_254
        ]
    );
    assert_eq!(sys.now().as_micros(), 12_708_254);
    assert_eq!(sys.metrics().total_calls(), 14);
    assert_eq!(sys.call_stats().attempts, 14);
}

/// A fault-heavy workload (drops, duplicates, delays, a crash/restart)
/// folded into a fingerprint: tracing on vs. off must not move a single
/// virtual-time observable.
#[test]
fn faulty_fingerprint_is_identical_with_tracing_on_and_off() {
    assert_eq!(faulty_fingerprint(false), faulty_fingerprint(true));
}

fn faulty_fingerprint(tracing: bool) -> String {
    let mut sys = faulty_system(2026, tracing);
    let mut fp = String::new();
    for i in 0..4usize {
        let r = sys.fetch(i, &format!("/vice/usr/u{}/data", (i + 2) % 4));
        match r {
            Ok(d) => writeln!(fp, "fetch {i} ok {}", d.len()).unwrap(),
            Err(e) => writeln!(fp, "fetch {i} err {e}").unwrap(),
        }
        writeln!(fp, "ws {i} at {}", sys.ws_time(i).as_micros()).unwrap();
    }
    let cs = sys.call_stats();
    let fs = sys.fault_stats();
    writeln!(
        fp,
        "now {} attempts {} retries {} timeouts {} dup {} fail {} faults {}/{}/{}/{}",
        sys.now().as_micros(),
        cs.attempts,
        cs.retries,
        cs.timeouts,
        cs.duplicates_ignored,
        cs.failures,
        fs.requests_dropped,
        fs.replies_dropped,
        fs.replies_duplicated,
        fs.delays_injected,
    )
    .unwrap();
    fp
}

/// A 2-cluster, 4-workstation system with per-user volumes, everyone
/// logged in and seeded with one stored file, and a message-fault plan
/// (plus a crash/restart of server 1) installed.
fn faulty_system(seed: u64, tracing: bool) -> ItcSystem {
    let cfg = SystemConfig {
        seed,
        tracing,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    for i in 0..4usize {
        let user = format!("u{i}");
        sys.add_user(&user, "pw").unwrap();
        sys.create_user_volume(&user, i as u32 / 2).unwrap();
        sys.login(i, &user, "pw").unwrap();
        sys.store(i, &format!("/vice/usr/u{i}/data"), vec![i as u8; 4_000])
            .unwrap();
    }
    let mut plan = FaultPlan::new(seed ^ 0xfa)
        .drop_request_prob(0.10)
        .drop_reply_prob(0.08)
        .duplicate_reply_prob(0.05)
        .delay(0.15, SimTime::from_millis(250));
    plan.schedule_crash(1, SimTime::from_secs(40));
    plan.schedule_restart(1, SimTime::from_secs(70));
    sys.install_faults(plan);
    sys
}

// ---------------------------------------------------------------------
// 2. Exact component decomposition
// ---------------------------------------------------------------------

/// Every completed call's components — retry waste, request network,
/// CPU/disk queueing and service, reply network, injected fault delay —
/// sum exactly (integer microseconds, no epsilon) to its end-to-end
/// virtual latency.
#[test]
fn span_components_sum_exactly_to_end_to_end_latency() {
    let mut sys = faulty_system(2026, true);
    for round in 0..6usize {
        for i in 0..4usize {
            let far = format!("/vice/usr/u{}/data", (i + 1) % 4);
            let _ = sys.fetch(i, &far);
            let _ = sys.stat(i, &format!("/vice/usr/u{i}/data"));
            let _ = sys.store(
                i,
                &format!("/vice/usr/u{i}/r{round}"),
                vec![round as u8; 1_000 + 500 * i],
            );
        }
    }

    let attr = sys.attribution();
    let mut checked = 0u64;
    let mut with_queueing = 0u64;
    let mut with_retry = 0u64;
    let mut with_delay = 0u64;
    for b in attr.recent() {
        assert_eq!(
            b.components_sum(),
            b.total(),
            "decomposition of {:?} ({}) does not add up",
            b.trace,
            b.kind
        );
        assert_eq!(b.total(), b.finished - b.started);
        assert!(b.attempts >= 1);
        assert!(b.service_cpu > SimTime::ZERO, "every call burns server CPU");
        checked += 1;
        if b.queueing() > SimTime::ZERO {
            with_queueing += 1;
        }
        if b.retry_wasted > SimTime::ZERO {
            with_retry += 1;
        }
        if b.fault_delay > SimTime::ZERO {
            with_delay += 1;
        }
    }
    assert!(
        checked >= 40,
        "expected a substantial sample, got {checked}"
    );
    assert!(with_retry > 0, "fault plan should force some retries");
    assert!(with_delay > 0, "fault plan should delay some messages");
    // Four clients share two servers: somebody queued.
    assert!(with_queueing > 0, "contention should show up as queueing");

    // The rollups are consistent with the per-call ring: below the ring's
    // retention cap, the per-server totals count exactly the breakdowns
    // recorded, and the per-volume rollup never exceeds it (calls outside
    // any volume are not attributed to one).
    let total_calls: u64 = attr.per_server().values().map(|t| t.calls).sum();
    assert_eq!(total_calls, checked, "per-server rollup == recorded calls");
    let volume_calls: u64 = attr.per_volume().values().map(|t| t.calls).sum();
    assert!(volume_calls <= total_calls);
    assert!(volume_calls > 0, "user-volume traffic is attributed");
}

// ---------------------------------------------------------------------
// 3. End-to-end trace-id propagation
// ---------------------------------------------------------------------

/// The id minted at the client rides the wire frame: the server-side
/// spans (request arrival, service dispatch) of a fault-free call carry
/// the same id, in causal order, with queue depth observed at arrival.
#[test]
fn trace_ids_propagate_through_server_side_spans() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::prototype(1, 1)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("eve", "pw").unwrap();
    sys.create_user_volume("eve", 0).unwrap();
    sys.login(0, "eve", "pw").unwrap();
    sys.store(0, "/vice/usr/eve/f.txt", b"payload".to_vec())
        .unwrap();

    let last = sys
        .attribution()
        .recent()
        .last()
        .expect("store completed a traced call")
        .clone();
    assert!(last.trace.is_traced());
    assert_eq!(last.kind, "store");

    let spans = sys.trace_collector().spans_of(last.trace);
    let classes: Vec<SpanClass> = spans.iter().map(|s| s.class).collect();
    assert_eq!(
        classes,
        [
            SpanClass::AttemptSend,
            SpanClass::RequestArrive,
            SpanClass::ServiceDispatch,
            SpanClass::ReplyDepart,
            SpanClass::ReplyArrive,
        ],
        "fault-free call records exactly one span per hop"
    );
    for w in spans.windows(2) {
        assert!(w[0].seq < w[1].seq, "seq numbers are causally ordered");
        assert!(w[0].at <= w[1].at, "virtual time never runs backwards");
    }
    // The server-side hops decoded the id from the wire frame — they did
    // not copy the client's bookkeeping — so equality here is proof of
    // propagation.
    let arrive = spans[1];
    assert_eq!(arrive.trace, last.trace);
    assert_eq!(arrive.server, Some(0));
    assert_eq!(arrive.queue_depth, Some(0), "idle server: empty queue");
    assert_eq!(spans[2].kind, Some("store"));
    assert_eq!(spans[4].at - spans[0].at, last.total() - last.retry_wasted);
}

// ---------------------------------------------------------------------
// 4. The flight recorder
// ---------------------------------------------------------------------

/// Runs a scenario whose every request is dropped: the call exhausts its
/// retries and the flight recorder freezes a timed-out dump naming the
/// saturated server. Returns the rendered dumps.
fn timeout_scenario(seed: u64) -> (ItcSystem, Vec<(String, String)>) {
    let cfg = SystemConfig {
        seed,
        tracing: true,
        ..SystemConfig::prototype(1, 1)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("eve", "pw").unwrap();
    sys.create_user_volume("eve", 0).unwrap();
    sys.login(0, "eve", "pw").unwrap();
    sys.store(0, "/vice/usr/eve/f.txt", b"payload".to_vec())
        .unwrap();
    // From here on the network eats every request.
    sys.install_faults(FaultPlan::new(seed).drop_request_prob(1.0));
    let err = sys
        .stat(0, "/vice/usr/eve/f.txt")
        .expect_err("no request ever arrives");
    let msg = err.to_string();
    assert!(msg.contains("timed out"), "unexpected error: {msg}");
    let dumps = sys.render_anomaly_dumps();
    (sys, dumps)
}

#[test]
fn seeded_timeout_freezes_a_dump_naming_the_server() {
    let (sys, dumps) = timeout_scenario(7);
    let cs = sys.call_stats();
    assert!(cs.timeouts >= 1);
    assert_eq!(cs.failures, 1);

    let recorded = sys.trace_collector().dumps();
    let timed_out: Vec<_> = recorded
        .iter()
        .filter(|d| d.reason == AnomalyReason::TimedOut)
        .collect();
    assert_eq!(timed_out.len(), 1, "exactly one exhausted call");
    let d = timed_out[0];
    assert_eq!(d.server, Some(0), "the dump names the implicated server");
    assert!(d.trace.is_traced());
    // The frozen window shows the retry storm: every attempt and every
    // timer expiry of the doomed call, ending in the abort.
    let attempts = d
        .spans
        .iter()
        .filter(|s| s.trace == d.trace && s.class == SpanClass::AttemptSend)
        .count();
    let fires = d
        .spans
        .iter()
        .filter(|s| s.trace == d.trace && s.class == SpanClass::TimeoutFire)
        .count();
    assert_eq!(attempts, fires, "each attempt died by timer");
    assert!(attempts >= 2, "retry policy sent more than one attempt");
    assert!(d
        .spans
        .iter()
        .any(|s| s.trace == d.trace && s.class == SpanClass::CallAbort));

    // The rendered JSONL names the server on its header line.
    let (name, text) = &dumps[0];
    assert!(name.ends_with(".jsonl"), "dump file name: {name}");
    assert!(name.contains("timed_out"), "dump file name: {name}");
    let header = text.lines().next().unwrap();
    assert!(header.contains("\"reason\":\"timed_out\""), "{header}");
    assert!(header.contains("\"server\":0"), "{header}");
}

#[test]
fn offline_volume_reply_freezes_a_dump_naming_the_volume() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::prototype(1, 1)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("eve", "pw").unwrap();
    let vol = sys.create_user_volume("eve", 0).unwrap();
    sys.login(0, "eve", "pw").unwrap();
    sys.store(0, "/vice/usr/eve/f.txt", b"payload".to_vec())
        .unwrap();
    sys.set_volume_online("/vice/usr/eve", false).unwrap();
    // Check-on-open: the re-open validates against the custodian, which
    // answers that the volume is offline.
    sys.fetch(0, "/vice/usr/eve/f.txt")
        .expect_err("volume is offline");

    let dumps = sys.trace_collector().dumps();
    let hit = dumps
        .iter()
        .find(|d| d.reason == AnomalyReason::VolumeOffline)
        .expect("degraded reply freezes a dump");
    assert_eq!(hit.server, Some(0));
    assert_eq!(hit.volume, Some(vol.0), "the dump names the volume");
    assert!(hit.trace.is_traced());
}

/// A store big enough that software decryption alone pins the server CPU
/// for minutes on end: the one-minute utilization probe trips the
/// recorder for every fully saturated bucket.
#[test]
fn utilization_peak_trips_the_flight_recorder() {
    let cfg = SystemConfig {
        tracing: true,
        encryption: itc_afs::sim::costs::EncryptionMode::Software,
        ..SystemConfig::prototype(1, 1)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("u0", "pw").unwrap();
    sys.login(0, "u0", "pw").unwrap();
    // 8 MB at 20 µs/byte of software crypt ≈ 160 s of CPU in a single
    // service interval — minute bucket 1 is busy end to end.
    sys.store(0, "/vice/tmp/monster", vec![1u8; 8 << 20])
        .unwrap();
    sys.stat(0, "/vice/tmp/monster").unwrap();

    let peaks: Vec<_> = sys
        .trace_collector()
        .dumps()
        .iter()
        .filter(|d| matches!(d.reason, AnomalyReason::UtilizationPeak(p) if p >= 98))
        .collect();
    assert!(!peaks.is_empty(), "saturated minute should freeze a dump");
    assert!(peaks.iter().all(|d| d.server == Some(0)));
    // Dedup: one dump per (server, resource, minute), not one per reply —
    // at most two (CPU + disk) per saturated minute.
    let minute = itc_afs::sim::resource::BUCKET_WIDTH.as_micros();
    let mut per_minute: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for d in &peaks {
        *per_minute.entry(d.at.as_micros() / minute).or_default() += 1;
    }
    assert!(
        per_minute.values().all(|&n| n <= 2),
        "peak dumps must dedup per resource-minute: {per_minute:?}"
    );
}

// ---------------------------------------------------------------------
// 5. Deterministic export
// ---------------------------------------------------------------------

/// Two same-seed runs render and export byte-identical anomaly JSONL.
#[test]
fn anomaly_export_is_byte_identical_across_same_seed_runs() {
    let (sys_a, dumps_a) = timeout_scenario(42);
    let (sys_b, dumps_b) = timeout_scenario(42);
    assert!(!dumps_a.is_empty());
    assert_eq!(dumps_a, dumps_b, "rendered dumps must match byte-for-byte");

    let base = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let dir_a = base.join("traces_a");
    let dir_b = base.join("traces_b");
    let wrote_a = sys_a.export_anomaly_dumps(&dir_a).unwrap();
    let wrote_b = sys_b.export_anomaly_dumps(&dir_b).unwrap();
    assert_eq!(wrote_a.len(), wrote_b.len());
    for (pa, pb) in wrote_a.iter().zip(&wrote_b) {
        assert_eq!(pa.file_name(), pb.file_name());
        assert_eq!(
            std::fs::read(pa).unwrap(),
            std::fs::read(pb).unwrap(),
            "exported files must match byte-for-byte"
        );
    }

    // A different seed shifts virtual timestamps (login nonces burn RNG
    // draws differently), so the export is allowed to differ — but the
    // anomaly structure (one timed-out dump) is stable.
    let (_, dumps_c) = timeout_scenario(43);
    assert_eq!(dumps_c.len(), dumps_a.len());
}

/// `breakdown_of` finds a completed call by id, and the rendered span
/// tree / attribution table (the `trace` bin's building blocks) mention
/// the call's hops and components.
#[test]
fn breakdown_lookup_and_renderers_cover_the_call() {
    let cfg = SystemConfig {
        tracing: true,
        ..SystemConfig::prototype(1, 1)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("eve", "pw").unwrap();
    sys.create_user_volume("eve", 0).unwrap();
    sys.login(0, "eve", "pw").unwrap();
    sys.store(0, "/vice/usr/eve/f.txt", vec![9u8; 30_000])
        .unwrap();

    let attr = sys.attribution();
    let last = attr.recent().last().unwrap().clone();
    let by_id = attr.breakdown_of(last.trace).unwrap();
    assert_eq!(by_id.finished, last.finished);
    assert!(attr.breakdown_of(TraceId(u64::MAX)).is_none());

    let spans = sys.trace_collector().spans_of(last.trace);
    let tree = itc_afs::core::trace::render_span_tree(last.trace, &spans);
    for label in [
        "attempt_send",
        "request_arrive",
        "service_dispatch",
        "reply_depart",
        "reply_arrive",
    ] {
        assert!(tree.contains(label), "span tree missing {label}:\n{tree}");
    }
    let table = itc_afs::core::trace::render_attribution_table(&last);
    for needle in ["queue", "service", "network", "total"] {
        assert!(table.contains(needle), "table missing {needle}:\n{table}");
    }
}
