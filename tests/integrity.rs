//! End-to-end data integrity: Merkle volumes, silent-corruption faults,
//! the background scrubber, and salvager-driven repair.
//!
//! The subsystem's contract has two halves. First, **detection is
//! total**: a byte flip anywhere in a server's durable state — journal
//! record bytes, checkpoint file contents, or the Merkle leaf table — is
//! caught by a trailer or digest verifier before the damaged bytes can be
//! served, exhaustively over every offset (the analogue of the torn-cut
//! sweep in `salvage.rs`). Second, **the machinery is free when idle**:
//! with no fault plan installed the Merkle bookkeeping draws no rng,
//! schedules no events, and moves no clock, and with scrubbing enabled
//! the passes charge only their own attribution ledger kind — foreground
//! virtual timings stay bit-identical.

use std::sync::{Arc, RwLock};

use itc_afs::core::disk::{CorruptionOutcome, Disk, FlipRegion, JournalOp, SyncPolicy};
use itc_afs::core::protect::{AccessList, ProtectionDomain, Rights};
use itc_afs::core::proto::{Payload, ServerId, ViceError, ViceReply, ViceRequest};
use itc_afs::core::server::Server;
use itc_afs::core::system::parallel::RunMode;
use itc_afs::core::system::ItcSystem;
use itc_afs::core::volume::{Volume, VolumeId};
use itc_afs::core::SystemConfig;
use itc_afs::rpc::NodeId;
use itc_afs::sim::{Costs, FaultPlan, SimRng, SimTime, TraversalMode, ValidationMode};
use itc_workload::day::{run_day, run_day_drivers, run_day_on, DayConfig};
use itc_workload::scenario::corruption_storm::{self, CorruptionStormConfig};

fn open_acl() -> AccessList {
    let mut acl = AccessList::new();
    acl.grant("anyuser", Rights::ALL);
    acl
}

fn store_op(path: &str, data: &[u8], mtime: u64) -> JournalOp {
    JournalOp::Store {
        path: path.to_string(),
        uid: 1,
        mtime,
        data: Payload::from_vec(data.to_vec()),
    }
}

// ----------------------------------------------------------------------
// Satellite: incremental Merkle maintenance is exact
// ----------------------------------------------------------------------

/// Property test across three seeds: after any random `JournalOp`
/// sequence — stores, removes, renames, symlinks, quota flips (which make
/// later stores fail), and periodic read-only cloning — the incrementally
/// maintained tree is leaf-for-leaf identical to a recompute from the
/// volume's actual bytes.
#[test]
fn incremental_merkle_equals_recompute_under_random_ops() {
    for seed in [1u64, 0xfeed, 0x9e37_79b9] {
        let mut rng = SimRng::seeded(seed);
        let mut vol = Volume::new(VolumeId(3), "user.prop", "/vice/usr/prop", open_acl());
        for d in ["/a", "/b", "/a/c"] {
            JournalOp::Mkdir {
                path: d.into(),
                uid: 1,
                mtime: 1,
            }
            .apply(&mut vol)
            .unwrap();
        }
        let pool: Vec<String> = (0..12)
            .map(|i| format!("{}/f{}.txt", ["/a", "/b", "/a/c"][i % 3], i))
            .collect();
        let pick = |rng: &mut SimRng| pool[rng.range(0, pool.len() as u64) as usize].clone();

        let mut clones = 0u32;
        for step in 0..300u64 {
            let mtime = 10 + step;
            let op = match rng.range(0, 10) {
                0..=4 => {
                    let len = rng.range(0, 200);
                    store_op(&pick(&mut rng), &vec![b'x'; len as usize], mtime)
                }
                5 => JournalOp::Remove {
                    path: pick(&mut rng),
                    mtime,
                },
                6 => JournalOp::Rename {
                    from: pick(&mut rng),
                    to: pick(&mut rng),
                    mtime,
                },
                7 => JournalOp::SetQuota {
                    // Tight quotas make a run of later stores fail, pinning
                    // that failed applies leave the tree untouched.
                    bytes: if rng.range(0, 2) == 0 {
                        Some(rng.range(0, 2_000))
                    } else {
                        None
                    },
                },
                8 => JournalOp::Symlink {
                    path: pick(&mut rng),
                    target: "/a".into(),
                    uid: 1,
                    mtime,
                },
                _ => JournalOp::SetMode {
                    path: pick(&mut rng),
                    mode: 0o640,
                    mtime,
                },
            };
            let _ = op.apply(&mut vol);
            if step % 89 == 0 {
                // The clone path: a read-only clone carries the tree, and
                // the carried tree matches the clone's own bytes.
                let clone = vol.clone_readonly(VolumeId(900 + clones));
                clones += 1;
                assert_eq!(
                    clone.merkle().leaves(),
                    clone.recompute_merkle().leaves(),
                    "seed {seed:#x} step {step}: clone tree drifted"
                );
            }
        }
        let recomputed = vol.recompute_merkle();
        assert_eq!(
            vol.merkle().leaves(),
            recomputed.leaves(),
            "seed {seed:#x}: incremental leaves != recompute"
        );
        assert_eq!(vol.merkle().root(), recomputed.root(), "seed {seed:#x}");
        assert!(vol.verify_merkle().is_empty(), "seed {seed:#x}");
    }
}

// ----------------------------------------------------------------------
// The corruption sweep: every byte of durable state, every region class
// ----------------------------------------------------------------------

/// Client-visible volume state for the sweep's prefix comparison.
fn fingerprint(vol: &Volume, paths: &[&str]) -> Vec<Option<Vec<u8>>> {
    paths.iter().map(|p| vol.fs().read(p).ok()).collect()
}

/// The tentpole property, exhaustively: build a disk whose durable extent
/// has all three region classes populated (synced journal records, a
/// checkpoint image with files, a Merkle leaf table), then flip one byte
/// at **every** offset with a varying mask. Every flip must be detected —
/// journal damage by the salvager's per-record trailer verification
/// (rejected as end-of-journal, leaving exactly the undamaged committed
/// prefix), image and leaf-table damage by the scrubber's digest walk —
/// and none may survive into served state.
#[test]
fn every_byte_flip_is_detected_and_resolved() {
    let vid = VolumeId(5);
    let mut disk = Disk::new(SyncPolicy::Lazy);
    let mut vol = Volume::new(vid, "user.sweep", "/vice/usr/sweep", open_acl());

    // Phase 1: ops that will be inside the checkpoint image.
    let mut snapshots = vec![vol.clone()];
    let journal = |disk: &mut Disk, vol: &mut Volume, snaps: &mut Vec<Volume>, op: JournalOp| {
        let seq = disk.begin(vol.id(), op.clone());
        let ok = op.apply(vol).is_ok();
        disk.commit(seq, ok);
        snaps.push(vol.clone());
        seq
    };
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        JournalOp::Mkdir {
            path: "/d".into(),
            uid: 1,
            mtime: 1,
        },
    );
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        store_op("/a.txt", b"the committed bytes of a", 2),
    );
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        store_op("/d/b.txt", b"nested file contents", 3),
    );
    disk.sync();
    disk.checkpoint(&vol);
    let upto_seq = 3u64;

    // Phase 2: committed records after the checkpoint (replayed at
    // salvage), including one abort.
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        store_op("/a.txt", b"a, rewritten after the checkpoint", 4),
    );
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        JournalOp::Rmdir {
            path: "/missing".into(),
            mtime: 5,
        },
    );
    journal(
        &mut disk,
        &mut vol,
        &mut snapshots,
        JournalOp::Remove {
            path: "/d/b.txt".into(),
            mtime: 6,
        },
    );
    disk.sync();

    let synced = disk.journal().stats().synced_len;
    let extent = disk.durable_extent();
    assert!(synced > 0 && extent > synced, "all three regions populated");

    let paths = ["/a.txt", "/d/b.txt"];
    let image = disk.checkpoint_image(vid).expect("checkpointed");
    let pristine: Vec<(String, Vec<u8>)> = image
        .regular_files()
        .iter()
        .map(|(p, _)| (p.clone(), image.fs().read(p).unwrap()))
        .collect();

    let (mut journal_flips, mut image_flips, mut leaf_flips) = (0u64, 0u64, 0u64);
    for offset in 0..extent {
        let mask = (offset % 255) as u8 + 1;
        let mut crashed = disk.clone();
        let region = crashed.apply_flip(offset, mask).expect("offset in extent");
        match region {
            FlipRegion::Journal { seq } => {
                journal_flips += 1;
                // Salvage must reject the damaged record and everything
                // after it — never replay flipped bytes.
                let (rebuilt, report) = crashed.salvage(vid).expect("salvages");
                assert!(
                    report.records_rejected >= 1,
                    "offset {offset}: journal flip not rejected"
                );
                assert!(!report.is_clean(), "offset {offset}");
                assert!(rebuilt.check_invariants().is_ok(), "offset {offset}");
                // The rebuilt state is the undamaged committed prefix: the
                // checkpoint plus phase-2 records before the damaged one
                // (damage inside phase 1 only voids the replay tail).
                let survivors = if seq <= upto_seq { upto_seq } else { seq - 1 };
                assert_eq!(
                    fingerprint(&rebuilt, &paths),
                    fingerprint(&snapshots[survivors as usize], &paths),
                    "offset {offset} (damaged seq {seq}): not the committed prefix"
                );
                // And its tree still describes its bytes exactly.
                assert!(rebuilt.verify_merkle().is_empty(), "offset {offset}");
            }
            FlipRegion::CheckpointFile { volume, ref path } => {
                image_flips += 1;
                assert_eq!(volume, vid);
                let scan = crashed.scrub_volume(vid).expect("scannable");
                assert!(
                    scan.findings.iter().any(|f| &f.path == path),
                    "offset {offset}: image damage in {path} not found by scrub"
                );
                // Repair from a voucher (the pristine copy stands in for
                // the read-only replica) makes the next scrub clean.
                let data = pristine
                    .iter()
                    .find(|(p, _)| p == path)
                    .map(|(_, d)| d.clone())
                    .expect("damaged file is a known file");
                assert!(crashed.repair_checkpoint_file(vid, path, data));
                assert!(
                    crashed
                        .scrub_volume(vid)
                        .expect("scannable")
                        .findings
                        .is_empty(),
                    "offset {offset}: repair did not restore {path}"
                );
            }
            FlipRegion::MerkleLeaf { volume, ref path } => {
                leaf_flips += 1;
                assert_eq!(volume, vid);
                let scan = crashed.scrub_volume(vid).expect("scannable");
                let finding = scan
                    .findings
                    .iter()
                    .find(|f| &f.path == path)
                    .unwrap_or_else(|| panic!("offset {offset}: leaf damage in {path} unseen"));
                // A flipped leaf can never be vouched for — the replica's
                // bytes hash to `found`, not the damaged `expected` — so
                // this class always resolves by offlining.
                assert_ne!(finding.expected, finding.found, "offset {offset}");
            }
        }
    }
    // The sweep really covered all three classes.
    assert_eq!(journal_flips, synced);
    assert!(image_flips > 0 && leaf_flips > 0);
    assert_eq!(journal_flips + image_flips + leaf_flips, extent);
}

/// The last line of defense: when a volume is salvaged from a checkpoint
/// whose file bytes were silently damaged (so the live volume itself now
/// carries the corruption), the fetch-time digest check refuses to serve
/// the file — the reply is `VolumeOffline`, the corruption is marked
/// `CaughtAtFetch`, and an integrity event is queued. No corrupt byte
/// reaches Venus.
#[test]
fn fetch_after_salvage_from_damaged_checkpoint_is_caught() {
    let domain = Arc::new(RwLock::new(ProtectionDomain::new()));
    let mut srv = Server::new(
        ServerId(0),
        NodeId(0),
        domain,
        ValidationMode::Callback,
        TraversalMode::ServerSide,
    );
    let vid = VolumeId(7);
    srv.add_volume(Volume::new(vid, "proj", "/vice/proj", open_acl()));
    srv.admin_apply(vid, store_op("/f.c", b"#include <clean/bytes.h>", 9))
        .unwrap();
    srv.sync_journal();
    srv.recheckpoint(vid);

    // Flip one byte of the checkpoint copy of /f.c.
    let synced = srv.journal_stats().synced_len;
    let region = srv
        .apply_corruption(SimTime::from_secs(1), synced + 3, 0x40)
        .expect("flip lands");
    assert!(matches!(region, FlipRegion::CheckpointFile { .. }));

    // Crash and salvage: the store predates the checkpoint, so replay
    // cannot heal it — the damage survives into the live volume.
    srv.crash_with_torn(0);
    srv.restart();
    let report = srv.salvage_volume(vid).expect("salvages");
    assert_eq!(report.records_rejected, 0, "journal is undamaged");

    let costs = Costs::default();
    let (reply, _) = srv.handle(
        "u",
        NodeId(9),
        &ViceRequest::Fetch {
            path: "/vice/proj/f.c".into(),
        },
        SimTime::from_secs(2),
        &costs,
    );
    assert!(
        matches!(reply, ViceReply::Error(ViceError::VolumeOffline(_))),
        "damaged bytes must not be served: {reply:?}"
    );
    let log = srv.corruption_log();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].outcome, CorruptionOutcome::CaughtAtFetch);
    assert!(log[0].detected_at.is_some());
    assert_eq!(
        srv.drain_integrity_events(),
        vec![(vid, "/f.c".to_string())]
    );
}

// ----------------------------------------------------------------------
// The corruption storm, end to end
// ----------------------------------------------------------------------

/// The scenario-level gate: a corruption-only plan fires across both
/// servers under live traffic with the scrubber rotating; by the end of
/// the closing audit **every injected flip is detected** — repaired from
/// the read-only replica, offlined with an `integrity_fault` anomaly, or
/// rejected at salvage — and a post-storm fetch of every shared source
/// file returns either the committed bytes or `VolumeOffline`, never
/// silent garbage. Same seed, byte-identical report.
#[test]
fn corruption_storm_leaves_zero_latent_corruptions() {
    let cfg = CorruptionStormConfig::small();
    let (mut sys, report) = corruption_storm::run(&cfg).expect("storm runs");

    let counters = sys.integrity_counters();
    assert_eq!(counters.injected, u64::from(cfg.flips), "all flips landed");
    assert_eq!(counters.latent, 0, "an injected flip was never detected");
    assert_eq!(counters.detected(), counters.injected);
    assert!(
        counters.repaired
            + counters.offlined
            + counters.rejected_at_salvage
            + counters.caught_at_fetch
            == counters.injected
    );
    // The storm actually exercised scrub detection and the anomaly path.
    let s0 = sys.server_scrub_stats(ServerId(0));
    let s1 = sys.server_scrub_stats(ServerId(1));
    assert!(s0.passes > 0 && s1.passes > 0);
    assert!(s0.mismatches_detected + s1.mismatches_detected > 0);
    assert!(report.anomaly_count("integrity_fault") > 0);

    // No corrupt byte is ever served: every shared source file fetched
    // after the storm is either exactly the committed content or refused.
    for f in 0..cfg.files {
        let path = format!("/vice/proj/src/f{f:03}.c");
        match sys.fetch(0, &path) {
            Ok(data) => assert_eq!(data, vec![b'a'; 24_000], "{path}: served corrupt bytes"),
            Err(e) => {
                let kind = itc_workload::scenario::classify_failure(&e)
                    .unwrap_or_else(|| panic!("{path}: structural failure {e:?}"));
                assert_eq!(
                    kind,
                    itc_workload::scenario::FailKind::Offline,
                    "{path}: unexpected failure class"
                );
            }
        }
    }

    // Determinism: the whole report (attribution rows, anomaly counts,
    // frozen dumps) renders byte-identically on a second run.
    let (_, again) = corruption_storm::run(&cfg).expect("storm runs");
    assert_eq!(report.jsonl(), again.jsonl());
}

// ----------------------------------------------------------------------
// Satellite: scrubbing is free for the foreground
// ----------------------------------------------------------------------

/// Scrub passes are perfectly preemptible background work: with the
/// scrubber enabled (and no corruption anywhere) the short-day golden
/// timings — final clock, per-workstation clocks, call counts, server
/// CPU *and disk* busy time — are bit-identical to the run without it.
#[test]
fn scrub_never_moves_foreground_virtual_time() {
    let day = DayConfig::short();
    let (plain_sys, plain) = run_day(SystemConfig::prototype(1, 1), &day).unwrap();

    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 1));
    sys.enable_scrub(SimTime::from_secs(60));
    let scrubbed = run_day_on(&mut sys, &day).unwrap();

    assert!(
        sys.server_scrub_stats(ServerId(0)).passes > 0,
        "scrubber never ran — the comparison is vacuous"
    );
    assert_eq!(scrubbed.ops, plain.ops);
    assert_eq!(sys.now(), plain_sys.now());
    assert_eq!(sys.ws_time(0), plain_sys.ws_time(0));
    assert_eq!(scrubbed.metrics.total_calls(), plain.metrics.total_calls());
    let (a, b) = (sys.server(ServerId(0)), plain_sys.server(ServerId(0)));
    assert_eq!(a.cpu().busy_total(), b.cpu().busy_total());
    assert_eq!(
        a.disk().busy_total(),
        b.disk().busy_total(),
        "scrub passes must not occupy the disk resource"
    );
}

/// Scrub disk time lands under its own attribution ledger kind — nonzero
/// when scrubbing with tracing on, zero otherwise, with every foreground
/// component unchanged.
#[test]
fn scrub_disk_time_has_its_own_ledger_kind() {
    let day = DayConfig::short();
    let mut cfg = SystemConfig::prototype(1, 1);
    cfg.tracing = true;

    let mut plain_sys = ItcSystem::build(cfg.clone());
    let _ = run_day_on(&mut plain_sys, &day).unwrap();

    let mut sys = ItcSystem::build(cfg);
    sys.enable_scrub(SimTime::from_secs(60));
    let _ = run_day_on(&mut sys, &day).unwrap();

    let scrubbed = sys.attribution().summary();
    let plain = plain_sys.attribution().summary();
    assert!(
        scrubbed.scrub_disk > SimTime::ZERO,
        "ledger kind never charged"
    );
    assert_eq!(plain.scrub_disk, SimTime::ZERO);
    assert_eq!(scrubbed.salvage_disk, plain.salvage_disk);
    assert_eq!(
        sys.attribution().recent().count(),
        plain_sys.attribution().recent().count()
    );
}

// ----------------------------------------------------------------------
// Satellite: corruption-only plans keep parallel runs parallel
// ----------------------------------------------------------------------

/// A corruption-only fault plan is cluster-local: it must not flip the
/// serialize-everything switch the crash/message plans need, and a
/// parallel day under it (scrubber on) must stay bit-identical to the
/// sequential run — including the corruption ledger and scrub counters
/// after a final deterministic drain.
#[test]
fn corruption_only_plan_stays_parallel_and_bit_identical() {
    use std::fmt::Write as _;

    fn run(mode: RunMode) -> String {
        let day = DayConfig {
            replicate_binaries: false,
            ..DayConfig::short()
        };
        let mut sys = ItcSystem::build(SystemConfig::prototype(4, 2));
        let mut plan = FaultPlan::new(0xc0de);
        for i in 0..8u32 {
            plan.schedule_corruption(i % 4, SimTime::from_secs(60 + 120 * u64::from(i)));
        }
        sys.install_faults(plan);
        assert!(sys.faults_installed());
        assert!(
            !sys.faults_couple_clusters(),
            "corruption-only plan must not serialize the run"
        );
        sys.enable_scrub(SimTime::from_secs(90));
        let report = run_day_drivers(&mut sys, &day, mode).expect("day runs");
        // Drain every cluster's calendar to the same global instant so
        // both modes have fired the same lifecycle events.
        sys.run_fault_schedule();

        let mut fp = String::new();
        writeln!(fp, "ops {}", report.ops).unwrap();
        writeln!(fp, "clock {}", sys.now().as_micros()).unwrap();
        for ws in 0..sys.workstation_count() {
            writeln!(fp, "ws {ws} t={}", sys.ws_time(ws).as_micros()).unwrap();
        }
        let cs = sys.call_stats();
        writeln!(fp, "rpc {} {} {}", cs.attempts, cs.retries, cs.timeouts).unwrap();
        writeln!(fp, "faults {}", sys.fault_stats().total()).unwrap();
        let c = sys.integrity_counters();
        writeln!(
            fp,
            "integrity injected={} latent={} repaired={} offlined={} rejected={} fetch={}",
            c.injected, c.latent, c.repaired, c.offlined, c.rejected_at_salvage, c.caught_at_fetch
        )
        .unwrap();
        for s in 0..sys.server_count() {
            let st = sys.server_scrub_stats(ServerId(s as u32));
            writeln!(
                fp,
                "scrub {s} passes={} files={} bytes={} mismatches={}",
                st.passes, st.files_scanned, st.bytes_scanned, st.mismatches_detected
            )
            .unwrap();
        }
        fp
    }

    let seq = run(RunMode::Sequential);
    let par = run(RunMode::Parallel(4));
    assert_eq!(seq, par, "corruption-only day diverged between run modes");
}
