//! Deterministic randomized integration tests, ported from the proptest
//! suite (now in `extras/proptest-suite`): seeded multi-workstation
//! operation sequences against a flat model of expected shared-file
//! contents. The system must agree with the model after every operation —
//! regardless of validation mode, traversal mode, or which workstation
//! performs each step. Driven by the in-tree seeded PRNG so the suite is
//! hermetic and bit-reproducible.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{SimRng, SimTime, TraversalMode, ValidationMode};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Store {
        ws: u8,
        file: u8,
        payload: u8,
        len: u16,
    },
    Fetch {
        ws: u8,
        file: u8,
    },
    Stat {
        ws: u8,
        file: u8,
    },
    Remove {
        ws: u8,
        file: u8,
    },
    Advance {
        secs: u16,
    },
}

/// Mirrors the proptest weights: Store 3, Fetch 4, Stat 2, Remove 1,
/// Advance 1.
fn rand_op(rng: &mut SimRng) -> Op {
    match rng.weighted_index(&[3.0, 4.0, 2.0, 1.0, 1.0]) {
        0 => Op::Store {
            ws: rng.range(0, 256) as u8,
            file: rng.range(0, 256) as u8,
            payload: rng.range(0, 256) as u8,
            len: rng.range(1, 2_000) as u16,
        },
        1 => Op::Fetch {
            ws: rng.range(0, 256) as u8,
            file: rng.range(0, 256) as u8,
        },
        2 => Op::Stat {
            ws: rng.range(0, 256) as u8,
            file: rng.range(0, 256) as u8,
        },
        3 => Op::Remove {
            ws: rng.range(0, 256) as u8,
            file: rng.range(0, 256) as u8,
        },
        _ => Op::Advance {
            secs: rng.range(1, 600) as u16,
        },
    }
}

fn path_of(file: u8) -> String {
    format!("/vice/usr/shared/f{}", file % 6)
}

fn run_config(validation: ValidationMode, traversal: TraversalMode, ops: &[Op]) {
    let cfg = SystemConfig {
        validation,
        traversal,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    let ws_count = sys.workstation_count();
    for w in 0..ws_count {
        let name = format!("u{w}");
        sys.add_user(&name, "pw").unwrap();
        sys.login(w, &name, "pw").unwrap();
    }
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();

    let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Store {
                ws,
                file,
                payload,
                len,
            } => {
                let ws = *ws as usize % ws_count;
                let p = path_of(*file);
                let data = vec![*payload; *len as usize];
                sys.store(ws, &p, data.clone()).unwrap();
                model.insert(p, data);
            }
            Op::Fetch { ws, file } => {
                let ws = *ws as usize % ws_count;
                let p = path_of(*file);
                match model.get(&p) {
                    Some(expect) => {
                        let got = sys.fetch(ws, &p).unwrap();
                        assert_eq!(&got, expect, "wrong contents for {p} at ws{ws}");
                    }
                    None => assert!(sys.fetch(ws, &p).is_err(), "{p} should not exist"),
                }
            }
            Op::Stat { ws, file } => {
                let ws = *ws as usize % ws_count;
                let p = path_of(*file);
                match model.get(&p) {
                    Some(expect) => {
                        let st = sys.stat(ws, &p).unwrap();
                        assert_eq!(st.size, expect.len() as u64, "wrong size for {p}");
                    }
                    None => assert!(sys.stat(ws, &p).is_err()),
                }
            }
            Op::Remove { ws, file } => {
                let ws = *ws as usize % ws_count;
                let p = path_of(*file);
                let r = sys.unlink(ws, &p);
                if model.remove(&p).is_some() {
                    assert!(r.is_ok(), "remove {p} failed: {r:?}");
                } else {
                    assert!(r.is_err());
                }
            }
            Op::Advance { secs } => {
                let target = sys.now() + SimTime::from_secs(u64::from(*secs));
                for w in 0..ws_count {
                    sys.advance_ws(w, target);
                }
            }
        }
    }

    // Final sweep: every workstation agrees with the model on every file.
    for w in 0..ws_count {
        for (p, expect) in &model {
            assert_eq!(
                &sys.fetch(w, p).unwrap(),
                expect,
                "final sweep {p} at ws{w}"
            );
        }
    }
}

fn run_cases(
    seed: u64,
    cases: usize,
    max_ops: u64,
    validation: ValidationMode,
    traversal: TraversalMode,
) {
    let mut rng = SimRng::seeded(seed);
    for _ in 0..cases {
        let n = rng.range(1, max_ops);
        let ops: Vec<Op> = (0..n).map(|_| rand_op(&mut rng)).collect();
        run_config(validation, traversal, &ops);
    }
}

#[test]
fn prototype_config_agrees_with_model() {
    run_cases(
        0x7379_735f_7072_6f74,
        12,
        40,
        ValidationMode::CheckOnOpen,
        TraversalMode::ServerSide,
    );
}

#[test]
fn revised_config_agrees_with_model() {
    run_cases(
        0x7379_735f_7265_7631,
        12,
        40,
        ValidationMode::Callback,
        TraversalMode::ClientSide,
    );
}

#[test]
fn mixed_config_agrees_with_model() {
    run_cases(
        0x7379_735f_6d69_7831,
        12,
        30,
        ValidationMode::Callback,
        TraversalMode::ServerSide,
    );
}

/// Replays the one sequence proptest ever shrank to a failure (recorded in
/// the old `prop_system.proptest-regressions`), preserved here verbatim so
/// the regression stays covered without the proptest dependency.
#[test]
fn regression_store_fetch_remove_store() {
    let ops = [
        Op::Store {
            ws: 0,
            file: 128,
            payload: 0,
            len: 1,
        },
        Op::Fetch { ws: 1, file: 158 },
        Op::Remove { ws: 0, file: 152 },
        Op::Store {
            ws: 70,
            file: 50,
            payload: 114,
            len: 413,
        },
    ];
    for (validation, traversal) in [
        (ValidationMode::CheckOnOpen, TraversalMode::ServerSide),
        (ValidationMode::Callback, TraversalMode::ClientSide),
        (ValidationMode::Callback, TraversalMode::ServerSide),
    ] {
        run_config(validation, traversal, &ops);
    }
}
