//! Consistency semantics: Section 3.6's action consistency ("a workstation
//! which fetches a file at the same time that another workstation is
//! storing it, will either receive the old version or the new one, but
//! never a partially modified version") and the store-on-close visibility
//! model, in both validation modes.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{FaultPlan, ScriptedFault, SimTime, ValidationMode};

fn two_users(validation: ValidationMode) -> ItcSystem {
    let cfg = SystemConfig {
        validation,
        ..SystemConfig::prototype(1, 3)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.login(0, "a", "pw").unwrap();
    sys.login(1, "b", "pw").unwrap();
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();
    sys
}

#[test]
fn fetch_never_sees_a_torn_file() {
    for mode in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        let mut sys = two_users(mode);
        let old = vec![b'O'; 100_000];
        let new = vec![b'N'; 120_000];
        sys.store(0, "/vice/usr/shared/f", old.clone()).unwrap();

        // Interleave many stores and fetches; every fetch must be exactly
        // the old or exactly the new contents.
        for round in 0..10 {
            let data = if round % 2 == 0 {
                new.clone()
            } else {
                old.clone()
            };
            sys.store(0, "/vice/usr/shared/f", data).unwrap();
            let got = sys.fetch(1, "/vice/usr/shared/f").unwrap();
            let all_same = got.windows(2).all(|w| w[0] == w[1]);
            assert!(all_same, "torn file observed in {mode:?}");
            assert!(got.len() == old.len() || got.len() == new.len());
        }
    }
}

#[test]
fn store_on_close_gives_timesharing_visibility() {
    for mode in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        let mut sys = two_users(mode);
        sys.store(0, "/vice/usr/shared/note", b"v1".to_vec())
            .unwrap();
        assert_eq!(sys.fetch(1, "/vice/usr/shared/note").unwrap(), b"v1");
        sys.store(0, "/vice/usr/shared/note", b"v2".to_vec())
            .unwrap();
        // "changes by one user are immediately visible to all other users"
        assert_eq!(
            sys.fetch(1, "/vice/usr/shared/note").unwrap(),
            b"v2",
            "stale read in {mode:?}"
        );
    }
}

#[test]
fn callback_mode_sees_updates_without_polling() {
    let mut sys = two_users(ValidationMode::Callback);
    sys.store(0, "/vice/usr/shared/f", b"v1".to_vec()).unwrap();
    let _ = sys.fetch(1, "/vice/usr/shared/f").unwrap();

    // ws1's copy is promise-protected: repeated opens are free.
    let calls = sys.metrics().total_calls();
    for _ in 0..5 {
        assert_eq!(sys.fetch(1, "/vice/usr/shared/f").unwrap(), b"v1");
    }
    assert_eq!(sys.metrics().total_calls(), calls);

    // ws0 updates; the break arrives; ws1's next open refetches.
    sys.store(0, "/vice/usr/shared/f", b"v2".to_vec()).unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/shared/f").unwrap(), b"v2");
}

#[test]
fn callback_breaks_do_not_disturb_the_writer() {
    let mut sys = two_users(ValidationMode::Callback);
    sys.store(0, "/vice/usr/shared/f", b"v1".to_vec()).unwrap();
    let _ = sys.fetch(1, "/vice/usr/shared/f").unwrap();
    sys.store(0, "/vice/usr/shared/f", b"v2".to_vec()).unwrap();
    // The writer's own cached copy remains valid (it IS the new version).
    let calls = sys.metrics().total_calls();
    assert_eq!(sys.fetch(0, "/vice/usr/shared/f").unwrap(), b"v2");
    assert_eq!(
        sys.metrics().total_calls(),
        calls,
        "writer should hit its own cache"
    );
}

#[test]
fn deletion_propagates_to_other_caches() {
    for mode in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        let mut sys = two_users(mode);
        sys.store(0, "/vice/usr/shared/gone", b"x".to_vec())
            .unwrap();
        let _ = sys.fetch(1, "/vice/usr/shared/gone").unwrap();
        sys.unlink(0, "/vice/usr/shared/gone").unwrap();
        assert!(
            sys.fetch(1, "/vice/usr/shared/gone").is_err(),
            "deleted file still readable in {mode:?}"
        );
    }
}

#[test]
fn version_counters_strictly_increase_across_writers() {
    let mut sys = two_users(ValidationMode::CheckOnOpen);
    sys.store(0, "/vice/usr/shared/f", b"1".to_vec()).unwrap();
    let mut last = sys.stat(0, "/vice/usr/shared/f").unwrap().version;
    for i in 0..6 {
        let writer = i % 2;
        sys.store(writer, "/vice/usr/shared/f", vec![i as u8 + 2])
            .unwrap();
        let v = sys.stat(1 - writer, "/vice/usr/shared/f").unwrap().version;
        assert!(v > last, "version did not advance: {v} after {last}");
        last = v;
    }
}

#[test]
fn virtual_time_always_moves_forward() {
    let mut sys = two_users(ValidationMode::CheckOnOpen);
    let mut prev = SimTime::ZERO;
    for i in 0..20 {
        sys.store(0, "/vice/usr/shared/t", vec![i]).unwrap();
        let now = sys.now();
        assert!(now >= prev);
        prev = now;
    }
    assert!(prev > SimTime::ZERO);
}

#[test]
fn fetch_racing_a_retried_store_sees_old_or_new_never_torn() {
    // Action consistency must survive message loss: a store whose reply is
    // dropped is retried under the same idempotency token, and a reader
    // racing it must see exactly the old or exactly the new version, with
    // the version counter advancing exactly once.
    for mode in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        let mut sys = two_users(mode);
        let old = vec![b'O'; 80_000];
        let new = vec![b'N'; 90_000];
        sys.store(0, "/vice/usr/shared/race", old.clone()).unwrap();
        let before = sys.stat(0, "/vice/usr/shared/race").unwrap().version;

        let mut plan = FaultPlan::new(0xc01d_5eed);
        plan.inject_once(0, ScriptedFault::DropReply);
        sys.install_faults(plan);

        sys.store(0, "/vice/usr/shared/race", new.clone()).unwrap();
        let got = sys.fetch(1, "/vice/usr/shared/race").unwrap();

        assert!(
            got == old || got == new,
            "torn or mixed file observed in {mode:?}: {} bytes",
            got.len()
        );
        assert_eq!(
            sys.stat(1, "/vice/usr/shared/race").unwrap().version,
            before + 1,
            "retried store must bump the version exactly once in {mode:?}"
        );
        assert!(sys.call_stats().retries >= 1, "the drop was never retried");
    }
}
