//! Observability layer: the deterministic metrics time-series, the SLO
//! health engine, and the vice-top operator console (DESIGN.md §15).
//!
//! Everything the observer emits is a pure function of the event
//! sequence — sampled observation-only at event boundaries, no RNG
//! draws, no virtual-time cost — so these tests pin outputs exactly:
//! byte-for-byte series round-trips, an exact console golden, and exact
//! health verdicts per storm. If a pin trips, the event pipeline's
//! timing drifted; diagnose with the flight recorder before re-capturing.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::obs::{parse_obs_line, render_console, render_obs_line};
use itc_afs::core::system::parallel::RunMode;
use itc_afs::core::system::ItcSystem;
use itc_afs::core::ObsLine;
use itc_afs::sim::{HealthRuleKind, SimTime};
use itc_workload::day::{run_day_on, DayConfig};
use itc_workload::scenario::{callback_storm, corruption_storm, login_storm};
use itc_workload::{CallbackStormConfig, CorruptionStormConfig, LoginStormConfig};

// ---------------------------------------------------------------------
// No false positives on a healthy campus
// ---------------------------------------------------------------------

/// A fault-free day — scrubber running, tracing on — produces a full
/// set of series but not a single health event: every rule's threshold
/// sits above what a healthy campus does.
#[test]
fn fault_free_day_raises_no_health_events() {
    let day = DayConfig::short();
    let mut cfg = SystemConfig::prototype(2, 2);
    cfg.tracing = true;
    let mut sys = ItcSystem::build(cfg);
    sys.enable_scrub(SimTime::from_secs(90));
    let report = run_day_on(&mut sys, &day).expect("day runs");
    assert!(report.ops > 0);

    let lines = sys.obs_summary().lines(&sys.health_events());
    assert!(
        lines.iter().any(|l| matches!(l, ObsLine::Server(_))),
        "observer recorded no server series on a traced day"
    );
    assert!(
        lines.iter().any(|l| matches!(l, ObsLine::Cluster(_))),
        "observer recorded no engine series on a traced day"
    );
    let health = sys.health_events();
    assert!(
        health.is_empty(),
        "healthy day raised health events: {health:?}"
    );
}

// ---------------------------------------------------------------------
// The storms the engine must flag
// ---------------------------------------------------------------------

/// The callback storm's scripted mid-storm brownout times out one
/// reader's refetch (four dropped attempts); the retry-rate rule flags
/// the timeout churn, and the break fan-out's queueing pushes the p99 of
/// a closed minute over the tail-latency threshold. Exactly these two
/// verdicts — adjacent breached minutes coalesce into one event each.
#[test]
fn callback_storm_brownout_is_flagged() {
    let (sys, _) = callback_storm::run(&CallbackStormConfig::small()).expect("storm runs");
    let health = sys.health_events();
    assert!(
        health
            .iter()
            .any(|e| e.rule == HealthRuleKind::RetryRate && e.server == 0),
        "brownout timeout churn not flagged: {health:?}"
    );
    assert!(
        health.iter().any(|e| e.rule == HealthRuleKind::TailLatency),
        "storm tail latency not flagged: {health:?}"
    );
    assert_eq!(health.len(), 2, "unexpected extra verdicts: {health:?}");
}

/// The corruption storm's scrub passes detect unrepairable flips and
/// offline the victim volumes; the integrity-burn rule turns each
/// detection bucket into a verdict. Nothing else fires — corruption does
/// not masquerade as a latency or retry problem.
#[test]
fn corruption_storm_offlining_is_flagged() {
    let (sys, _) = corruption_storm::run(&CorruptionStormConfig::small()).expect("storm runs");
    let health = sys.health_events();
    assert!(
        health
            .iter()
            .any(|e| e.rule == HealthRuleKind::IntegrityBurn),
        "volume offlining not flagged: {health:?}"
    );
    assert!(
        health
            .iter()
            .all(|e| e.rule == HealthRuleKind::IntegrityBurn),
        "corruption storm raised non-integrity verdicts: {health:?}"
    );
    assert_eq!(health.len(), 2, "one verdict per detection bucket");
}

// ---------------------------------------------------------------------
// Satellite: cancelled-TimeoutFire churn through SystemMetrics
// ---------------------------------------------------------------------

/// Every acknowledged RPC arms a retransmission timer that its reply
/// then stands down; `SystemMetrics::events.cancelled` counts exactly
/// that churn. The login storm's value is pinned — the calendar-index
/// work (ROADMAP item 1) must change `high_water`, not this count.
#[test]
fn login_storm_cancelled_timer_churn_is_pinned() {
    let (sys, _) = login_storm::run(&LoginStormConfig::small()).expect("storm runs");
    let m = sys.metrics();
    assert!(m.events.cancelled > 0, "no timers were ever stood down");
    assert!(m.events.executed + m.events.cancelled <= m.events.scheduled);
    assert_eq!(m.events.cancelled, 117, "cancelled-timer churn drifted");
}

// ---------------------------------------------------------------------
// Series export: round-trips, disk, schedule-independence
// ---------------------------------------------------------------------

/// The JSONL export parses back line-for-line into the same typed
/// records, re-renders to identical bytes, and the offline console over
/// the parsed lines matches the live console — the `bench top FILE`
/// re-renderer needs no simulator state.
#[test]
fn series_export_round_trips_through_the_offline_renderer() {
    let (sys, _) = callback_storm::run(&CallbackStormConfig::small()).expect("storm runs");
    let text = sys.render_series_export();
    assert!(!text.is_empty());

    let lines: Vec<ObsLine> = text
        .lines()
        .map(|l| parse_obs_line(l).unwrap_or_else(|| panic!("unparseable line: {l}")))
        .collect();
    let rerendered: String = lines
        .iter()
        .map(|l| format!("{}\n", render_obs_line(l)))
        .collect();
    assert_eq!(text, rerendered, "render -> parse -> render must be exact");

    let live = render_console(&sys.obs_summary().lines(&sys.health_events()));
    assert_eq!(render_console(&lines), live);

    // Export to disk and read back: same bytes (mirrors the anomaly-dump
    // round-trip; CI also diffs two exports of separate processes).
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("obs_export");
    let path = sys.export_series(&dir).expect("export");
    assert_eq!(path.file_name().unwrap(), "series.jsonl");
    assert_eq!(std::fs::read_to_string(path).expect("read back"), text);
}

/// The observer must not see the parallel schedule: the full series
/// export of the four-cluster login storm is byte-identical between the
/// sequential and 4-worker runs (the same gate ci.sh drives through
/// `pdes series`).
#[test]
fn series_export_is_schedule_independent() {
    let cfg = LoginStormConfig::parallel();
    let (seq, _) = login_storm::run_mode(&cfg, RunMode::Sequential).expect("storm runs");
    let (par, _) = login_storm::run_mode(&cfg, RunMode::Parallel(4)).expect("storm runs");
    assert_eq!(
        seq.render_series_export(),
        par.render_series_export(),
        "series export diverged between schedules"
    );
}

// ---------------------------------------------------------------------
// The console golden
// ---------------------------------------------------------------------

/// The vice-top console over the callback storm, pinned byte-for-byte
/// (the same output `bench top` prints). The golden shows the storm's
/// whole arc: the warm-up minute, the break fan-out driving the p99 and
/// cancel columns up, and the two health verdicts at the bottom.
#[test]
fn vice_top_console_is_golden_pinned() {
    let (sys, _) = callback_storm::run(&CallbackStormConfig::small()).expect("storm runs");
    let console = render_console(&sys.obs_summary().lines(&sys.health_events()));
    let golden = include_str!("data/vice_top_callback_small.txt");
    assert_eq!(console, golden, "vice-top console drifted from the golden");
}

// ---------------------------------------------------------------------
// Observation-only: tracing off means no series, same timings
// ---------------------------------------------------------------------

/// With tracing off the observer is never consulted: no series, no
/// health events, and (checked exhaustively by the golden-timing suite)
/// the same virtual timeline. The operator pays for vice-top only when
/// the flight recorder is already on.
#[test]
fn observer_is_silent_with_tracing_off() {
    let day = DayConfig::short();
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    let _ = run_day_on(&mut sys, &day).expect("day runs");
    assert!(sys.obs_summary().lines(&[]).is_empty());
    assert!(sys.health_events().is_empty());
}
