//! Golden-timings equivalence tests.
//!
//! The numbers below were captured from the pre-refactor code, where every
//! Vice call was one synchronous `SystemTransport::call` and `ItcSystem`
//! was a single 1800-line module. The event-pipeline refactor (request
//! departs → arrives → queues → served → reply departs → arrives, all as
//! scheduler events) is required to be *observationally identical* for
//! fault-free runs: same per-op virtual timestamps, same final clocks,
//! same call mixes, same server busy time. If one of these assertions
//! trips, the event chain has drifted from the timing model — fix the
//! chain, do not re-capture the numbers.

use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::core::SystemConfig;
use itc_workload::day::{run_day, DayConfig};

/// A short synthetic day on a 1-cluster, 1-workstation prototype system,
/// checked against the synchronous-transport capture.
#[test]
fn short_day_matches_pre_refactor_capture() {
    let day = DayConfig::short();
    let (sys, report) = run_day(SystemConfig::prototype(1, 1), &day).unwrap();
    let m = &report.metrics;

    assert_eq!(report.ops, 86);
    assert_eq!(sys.now().as_micros(), 1_786_043_255);
    assert_eq!(m.total_calls(), 85);

    let golden_calls = [
        ("fetch", 18),
        ("store", 2),
        ("validate", 37),
        ("getstatus", 21),
        ("getcustodian", 2),
        ("makedir", 0),
        ("remove", 0),
        ("setacl", 0),
        ("getacl", 0),
        ("rename", 0),
        ("lock", 0),
        ("unlock", 0),
    ];
    for (kind, expected) in golden_calls {
        assert_eq!(
            sys.total_server_calls_of(kind),
            expected,
            "server call count for {kind:?} drifted"
        );
    }

    assert_eq!(m.cache.hits, 37);
    assert_eq!(m.cache.misses, 18);
    assert_eq!(sys.call_stats().attempts, 85);
    assert_eq!(
        sys.server(ServerId(0)).cpu().busy_total().as_micros(),
        61_615_000
    );
}

/// A scripted mixed workload on a 2-cluster system, checked op-by-op: the
/// workstation's local virtual time after every operation must equal the
/// synchronous-transport trace exactly.
#[test]
fn scripted_ops_match_pre_refactor_trace() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    sys.add_user("satya", "pw").unwrap();
    sys.create_user_volume("satya", 1).unwrap();
    sys.login(0, "satya", "pw").unwrap();

    let mut trace = Vec::new();
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.store(0, "/vice/usr/shared/a.txt", vec![7u8; 12_000])
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    let d = sys.fetch(0, "/vice/usr/shared/a.txt").unwrap();
    assert_eq!(d.len(), 12_000);
    trace.push(sys.ws_time(0).as_micros());
    let st = sys.stat(0, "/vice/usr/shared/a.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    assert_eq!(st.version, 1);
    sys.store(0, "/vice/usr/satya/far.txt", vec![1u8; 3000])
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    let _ = sys.fetch(0, "/vice/usr/satya/far.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.rename(0, "/vice/usr/shared/a.txt", "/vice/usr/shared/b.txt")
        .unwrap();
    trace.push(sys.ws_time(0).as_micros());
    sys.unlink(0, "/vice/usr/shared/b.txt").unwrap();
    trace.push(sys.ws_time(0).as_micros());

    assert_eq!(
        trace,
        [
            2_732_411, 4_648_347, 5_812_017, 6_737_312, 9_533_986, 10_711_669, 12_002_905,
            12_708_254
        ]
    );
    assert_eq!(sys.now().as_micros(), 12_708_254);
    assert_eq!(sys.metrics().total_calls(), 14);
    assert_eq!(sys.call_stats().attempts, 14);
}
