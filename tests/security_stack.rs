//! Security integration tests: the Section 3.4 trust model enforced
//! through the full stack. "Security should not be predicated on the
//! integrity of workstations."

use itc_afs::core::config::SystemConfig;
use itc_afs::core::protect::{AccessList, Rights};
use itc_afs::core::proto::{ServerId, ViceError};
use itc_afs::core::system::{ItcSystem, SystemError};
use itc_afs::core::venus::VenusError;
use itc_afs::cryptbox::{channel, derive_key, handshake, mode};
use itc_afs::rpc::binding;
use itc_afs::rpc::NodeId;

#[test]
fn wrong_password_never_reaches_file_operations() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 1));
    sys.add_user("alice", "right").unwrap();
    assert!(matches!(
        sys.login(0, "alice", "wrong"),
        Err(SystemError::AuthFailed(_))
    ));
    // No session, no access.
    assert!(matches!(
        sys.fetch(0, "/vice/usr"),
        Err(SystemError::Venus(VenusError::NotLoggedIn))
    ));
    // And no server calls happened at all.
    assert_eq!(sys.metrics().total_calls(), 0);
}

#[test]
fn unknown_users_cannot_bind() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 1));
    assert!(sys.login(0, "ghost", "anything").is_err());
}

#[test]
fn authenticated_identity_governs_not_request_contents() {
    // A malicious Venus can put anything in its requests; the server uses
    // the handshake identity. Demonstrated at the binding layer (the same
    // invariant the system transport relies on).
    let k = derive_key("pw", "mallory");
    let mut b = binding::establish("mallory", NodeId(0), NodeId(1), k, k, (1, 2)).unwrap();
    b.round_trip(b"i-am=root; Remove /vice/etc/passwd", |authenticated, _| {
        assert_eq!(authenticated, "mallory");
        Vec::new()
    })
    .unwrap();
}

#[test]
fn per_directory_acls_gate_every_operation() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 3));
    sys.add_user("owner", "pw").unwrap();
    sys.add_user("reader", "pw").unwrap();
    sys.add_user("outsider", "pw").unwrap();
    sys.add_group("readers").unwrap();
    sys.add_member("readers", "reader").unwrap();

    let mut acl = AccessList::new();
    acl.grant("owner", Rights::ALL);
    acl.grant("readers", Rights::READ_ONLY);
    sys.create_volume("vault", "/vice/vault", ServerId(0), acl)
        .unwrap();

    sys.login(0, "owner", "pw").unwrap();
    sys.login(1, "reader", "pw").unwrap();
    sys.login(2, "outsider", "pw").unwrap();
    sys.store(0, "/vice/vault/doc", b"classified".to_vec())
        .unwrap();

    // Reader: read yes, write no, list yes.
    assert!(sys.fetch(1, "/vice/vault/doc").is_ok());
    assert!(sys.readdir(1, "/vice/vault").is_ok());
    assert!(matches!(
        sys.store(1, "/vice/vault/doc", b"defaced".to_vec()),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::PermissionDenied(_)
        )))
    ));
    assert!(sys.unlink(1, "/vice/vault/doc").is_err());
    assert!(sys.mkdir(1, "/vice/vault/sub").is_err());

    // Outsider: nothing.
    assert!(sys.fetch(2, "/vice/vault/doc").is_err());
    assert!(sys.readdir(2, "/vice/vault").is_err());
    assert!(sys.stat(2, "/vice/vault/doc").is_err());
}

#[test]
fn administer_right_gates_acl_changes() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 2));
    sys.add_user("owner", "pw").unwrap();
    sys.add_user("sneaky", "pw").unwrap();
    let mut acl = AccessList::new();
    acl.grant("owner", Rights::ALL);
    acl.grant(
        "sneaky",
        Rights::READ | Rights::WRITE | Rights::INSERT | Rights::LOOKUP,
    );
    sys.create_volume("proj", "/vice/proj", ServerId(0), acl)
        .unwrap();
    sys.login(0, "owner", "pw").unwrap();
    sys.login(1, "sneaky", "pw").unwrap();

    // Sneaky tries to grant himself ADMINISTER.
    let mut grab = AccessList::new();
    grab.grant("sneaky", Rights::ALL);
    assert!(matches!(
        sys.set_acl(1, "/vice/proj", grab.clone()),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::PermissionDenied(_)
        )))
    ));
    // The owner can.
    assert!(sys.set_acl(0, "/vice/proj", grab).is_ok());
}

#[test]
fn revoked_user_is_blocked_even_with_warm_cache() {
    // The dangerous case: the attacker already has the file cached. A
    // check-on-open validation must re-check protection, not just
    // freshness.
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 2));
    sys.add_user("admin", "pw").unwrap();
    sys.add_user("mallory", "pw").unwrap();
    let mut acl = AccessList::new();
    acl.grant("admin", Rights::ALL);
    acl.grant("mallory", Rights::READ_ONLY);
    sys.create_volume("v", "/vice/v", ServerId(0), acl.clone())
        .unwrap();
    sys.login(0, "admin", "pw").unwrap();
    sys.login(1, "mallory", "pw").unwrap();

    sys.store(0, "/vice/v/secret", b"rotate the keys".to_vec())
        .unwrap();
    assert!(sys.fetch(1, "/vice/v/secret").is_ok()); // now cached at ws 1

    let mut denied = acl;
    denied.deny("mallory", Rights::ALL);
    sys.set_acl(0, "/vice/v", denied).unwrap();

    assert!(matches!(
        sys.fetch(1, "/vice/v/secret"),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::PermissionDenied(_)
        )))
    ));
}

#[test]
fn negative_rights_override_group_grants() {
    let mut sys = ItcSystem::build(SystemConfig::prototype(1, 2));
    sys.add_user("admin", "pw").unwrap();
    sys.add_user("eve", "pw").unwrap();
    sys.add_group("everyone").unwrap();
    sys.add_member("everyone", "eve").unwrap();

    let mut acl = AccessList::new();
    acl.grant("admin", Rights::ALL);
    acl.grant("everyone", Rights::ALL.minus(Rights::ADMINISTER));
    acl.deny("eve", Rights::WRITE | Rights::INSERT | Rights::DELETE);
    sys.create_volume("w", "/vice/w", ServerId(0), acl).unwrap();
    sys.login(0, "admin", "pw").unwrap();
    sys.login(1, "eve", "pw").unwrap();
    sys.store(0, "/vice/w/board", b"notes".to_vec()).unwrap();

    // Eve reads (positive via group) but cannot write (negative wins).
    assert!(sys.fetch(1, "/vice/w/board").is_ok());
    assert!(sys.store(1, "/vice/w/board", b"x".to_vec()).is_err());
    assert!(sys.store(1, "/vice/w/new", b"x".to_vec()).is_err());
}

#[test]
fn channel_tampering_and_replay_rejected_at_the_crypto_layer() {
    let key = derive_key("pw", "u");

    // Tamper with a sealed store request.
    let (mut c, mut s) = channel::pair(key);
    let mut sealed = c.seal_msg(b"Store /vice/x 9999 bytes follow");
    sealed[10] ^= 0x20;
    assert!(s.open_msg(&sealed).is_err());

    // Replay an intact one (fresh connection: the tampered message above
    // consumed a sequence number on the sender side).
    let (mut c, mut s) = channel::pair(key);
    let sealed = c.seal_msg(b"Remove /vice/x");
    s.open_msg(&sealed).unwrap();
    assert!(s.open_msg(&sealed).is_err());
}

#[test]
fn eavesdropper_learns_nothing_without_the_key() {
    let key = derive_key("pw", "u");
    let secret = b"the location database changes relatively slowly";
    let sealed = mode::seal(key, 99, secret);
    // The plaintext does not appear in the ciphertext.
    assert!(!sealed
        .windows(secret.len().min(8))
        .any(|w| w == &secret[..8.min(secret.len())]));
    // And a brute-force neighbor key fails.
    let near_key = derive_key("pw ", "u");
    assert!(mode::open(near_key, &sealed).is_err());
}

#[test]
fn session_keys_differ_per_connection() {
    let k = derive_key("pw", "u");
    let run = |n1, n2| {
        let (ch, m1) = handshake::ClientHandshake::initiate(k, n1);
        let (sh, m2) = handshake::ServerHandshake::respond(k, &m1, n2).unwrap();
        let (sk, m3) = ch.complete(&m2).unwrap();
        sh.finish(&m3).unwrap();
        sk
    };
    assert_ne!(run(1, 2), run(3, 4));
}
