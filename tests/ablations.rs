//! Integration tests for the design-choice ablations: each knob in
//! `SystemConfig` must change the measured behavior in the direction the
//! paper predicts, on identical workloads.

use itc_afs::core::config::{CachePolicy, SystemConfig};
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{ServerStructure, SimTime, TraversalMode, ValidationMode};

/// A fixed mini-workload: one user re-reads a working set repeatedly.
fn reread_workload(cfg: SystemConfig) -> ItcSystem {
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("u", "pw").unwrap();
    sys.create_user_volume("u", 0).unwrap();
    for i in 0..10 {
        sys.admin_install_file(&format!("/vice/usr/u/f{i}"), vec![7; 20_000])
            .unwrap();
    }
    sys.login(0, "u", "pw").unwrap();
    for _round in 0..5 {
        for i in 0..10 {
            let _ = sys.fetch(0, &format!("/vice/usr/u/f{i}")).unwrap();
        }
    }
    sys
}

#[test]
fn callback_mode_eliminates_warm_open_traffic() {
    let coo = reread_workload(SystemConfig {
        validation: ValidationMode::CheckOnOpen,
        ..SystemConfig::prototype(1, 1)
    });
    let cb = reread_workload(SystemConfig {
        validation: ValidationMode::Callback,
        ..SystemConfig::prototype(1, 1)
    });
    // Check-on-open: 10 fetches + 40 validates. Callback: 10 fetches.
    assert_eq!(coo.total_server_calls_of("validate"), 40);
    assert_eq!(cb.total_server_calls_of("validate"), 0);
    assert_eq!(coo.total_server_calls_of("fetch"), 10);
    assert_eq!(cb.total_server_calls_of("fetch"), 10);
    // Callback state exists only in callback mode.
    assert_eq!(
        coo.server(itc_afs::core::proto::ServerId(0))
            .callback_promises(),
        0
    );
    assert!(
        cb.server(itc_afs::core::proto::ServerId(0))
            .callback_promises()
            > 0
    );
}

#[test]
fn client_side_traversal_moves_cpu_off_the_server() {
    let srv_side = reread_workload(SystemConfig {
        traversal: TraversalMode::ServerSide,
        ..SystemConfig::prototype(1, 1)
    });
    let cli_side = reread_workload(SystemConfig {
        traversal: TraversalMode::ClientSide,
        ..SystemConfig::prototype(1, 1)
    });
    let srv_cpu = srv_side
        .server(itc_afs::core::proto::ServerId(0))
        .cpu()
        .busy_total();
    let cli_cpu = cli_side
        .server(itc_afs::core::proto::ServerId(0))
        .cpu()
        .busy_total();
    assert!(
        cli_cpu < srv_cpu,
        "client-side traversal should reduce server CPU: {cli_cpu} vs {srv_cpu}"
    );
}

#[test]
fn lwp_structure_reduces_per_call_cost() {
    let ppc = reread_workload(SystemConfig {
        structure: ServerStructure::ProcessPerClient,
        ..SystemConfig::prototype(1, 1)
    });
    let lwp = reread_workload(SystemConfig {
        structure: ServerStructure::SingleProcessLwp,
        ..SystemConfig::prototype(1, 1)
    });
    let ppc_busy = ppc
        .server(itc_afs::core::proto::ServerId(0))
        .cpu()
        .busy_total();
    let lwp_busy = lwp
        .server(itc_afs::core::proto::ServerId(0))
        .cpu()
        .busy_total();
    // Same call count, lower CPU per call.
    assert_eq!(ppc.metrics().total_calls(), lwp.metrics().total_calls());
    let diff = ppc_busy - lwp_busy;
    let expected = ppc.config().costs.srv_cpu_context_switch * ppc.metrics().total_calls();
    assert_eq!(
        diff, expected,
        "difference should be exactly the context switches"
    );
}

#[test]
fn count_lru_vs_space_lru_evict_differently() {
    // A working set of 9 files: eight modest, one huge. Count-LRU keeps
    // all nine; a tight space-LRU cannot hold the huge one plus the rest.
    let build = |cache| {
        let mut sys = ItcSystem::build(SystemConfig {
            cache,
            ..SystemConfig::prototype(1, 1)
        });
        sys.add_user("u", "pw").unwrap();
        sys.create_user_volume("u", 0).unwrap();
        for i in 0..8 {
            sys.admin_install_file(&format!("/vice/usr/u/small{i}"), vec![1; 20_000])
                .unwrap();
        }
        sys.admin_install_file("/vice/usr/u/huge", vec![2; 900_000])
            .unwrap();
        sys.login(0, "u", "pw").unwrap();
        for _ in 0..3 {
            for i in 0..8 {
                let _ = sys.fetch(0, &format!("/vice/usr/u/small{i}")).unwrap();
            }
            let _ = sys.fetch(0, "/vice/usr/u/huge").unwrap();
        }
        sys
    };

    let by_count = build(CachePolicy::CountLru(100));
    let by_space = build(CachePolicy::SpaceLru(1_000_000));
    // Count policy: everything fits; after the cold round all opens hit.
    assert_eq!(by_count.venus(0).cache().stats().misses, 9);
    // Space policy: the huge file forces churn; strictly more misses.
    assert!(
        by_space.venus(0).cache().stats().misses > 9,
        "space-limited cache should have evicted under pressure"
    );
    // And the space cache respected its byte bound throughout.
    assert!(by_space.venus(0).cache().bytes() <= 1_000_000);
}

#[test]
fn all_sixteen_mode_combinations_work() {
    // Every combination of the four knobs must produce a functioning
    // system (the ablation matrix never hits an unimplemented corner).
    for validation in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        for traversal in [TraversalMode::ServerSide, TraversalMode::ClientSide] {
            for structure in [
                ServerStructure::ProcessPerClient,
                ServerStructure::SingleProcessLwp,
            ] {
                for cache in [CachePolicy::CountLru(50), CachePolicy::SpaceLru(5 << 20)] {
                    let cfg = SystemConfig {
                        validation,
                        traversal,
                        structure,
                        cache,
                        ..SystemConfig::prototype(1, 2)
                    };
                    let mut sys = ItcSystem::build(cfg);
                    sys.add_user("x", "pw").unwrap();
                    sys.login(0, "x", "pw").unwrap();
                    sys.mkdir_p(0, "/vice/usr/x").unwrap();
                    sys.store(0, "/vice/usr/x/t", b"combo".to_vec()).unwrap();
                    assert_eq!(
                        sys.fetch(0, "/vice/usr/x/t").unwrap(),
                        b"combo",
                        "combo failed: {validation:?}/{traversal:?}/{structure:?}/{cache:?}"
                    );
                    assert!(sys.now() > SimTime::ZERO);
                }
            }
        }
    }
}
