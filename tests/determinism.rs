//! Determinism regression for the discrete-event core.
//!
//! A 40-client, 4-cluster system runs a mixed workload — per-user volumes,
//! cross-cluster fetches, message faults, and a mid-run crash/restart of
//! one server — and every observable is folded into a fingerprint string:
//! per-workstation virtual clocks, the global clock, call/fault/event
//! counters, and the `Display` text of every error. The same seed must
//! produce a bit-identical fingerprint on every run; a different seed must
//! produce a different event interleaving while preserving the structural
//! invariants (event accounting balances, queues drain, successful reads
//! return the stored bytes).

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::sim::{FaultPlan, SimTime};
use std::fmt::Write as _;

const CLUSTERS: u32 = 4;
const WS_PER_CLUSTER: u32 = 10;

/// Runs the scripted workload and folds every observable into a string.
fn run_fingerprint(seed: u64) -> String {
    let cfg = SystemConfig {
        seed,
        ..SystemConfig::revised(CLUSTERS, WS_PER_CLUSTER)
    };
    let mut sys = ItcSystem::build(cfg);

    let n = (CLUSTERS * WS_PER_CLUSTER) as usize;
    for i in 0..n {
        let user = format!("u{i}");
        sys.add_user(&user, "pw").unwrap();
        sys.create_user_volume(&user, (i as u32) / WS_PER_CLUSTER)
            .unwrap();
    }

    // Message faults on every exchange, plus server 1 crashing mid-run
    // and recovering later. Both are delivered as scheduler events.
    let mut plan = FaultPlan::new(seed ^ 0xfau64)
        .drop_request_prob(0.04)
        .drop_reply_prob(0.03)
        .duplicate_reply_prob(0.05)
        .delay(0.10, SimTime::from_millis(250));
    plan.schedule_crash(1, SimTime::from_secs(6));
    plan.schedule_restart(1, SimTime::from_secs(30));
    sys.install_faults(plan);

    let mut fp = String::new();
    let mut note = |tag: &str, outcome: Result<usize, String>| match outcome {
        Ok(len) => writeln!(fp, "{tag} ok len={len}").unwrap(),
        Err(e) => writeln!(fp, "{tag} err {e}").unwrap(),
    };

    // Phase 1: everyone logs in and stores into their own volume.
    for i in 0..n {
        let user = format!("u{i}");
        let r = sys
            .login(i, &user, "pw")
            .map(|_| 0)
            .map_err(|e| e.to_string());
        note(&format!("login {i}"), r);
        let path = format!("/vice/usr/u{i}/data");
        let body = vec![(i % 251) as u8; 2_000 + 137 * i];
        let r = sys
            .store(i, &path, body)
            .map(|_| 0)
            .map_err(|e| e.to_string());
        note(&format!("store {i}"), r);
    }

    // Phase 2: everyone fetches a neighbouring cluster's file (forces
    // getcustodian traffic and cross-cluster hops), then re-reads its own.
    for i in 0..n {
        let j = (i + WS_PER_CLUSTER as usize) % n;
        let far = format!("/vice/usr/u{j}/data");
        let want = 2_000 + 137 * j;
        let r = sys
            .fetch(i, &far)
            .map_err(|e| e.to_string())
            .map(|d| d.len());
        if let Ok(len) = &r {
            assert_eq!(*len, want, "fetched bytes must match what was stored");
        }
        note(&format!("far {i}"), r);
        let own = format!("/vice/usr/u{i}/data");
        let r = sys
            .fetch(i, &own)
            .map_err(|e| e.to_string())
            .map(|d| d.len());
        note(&format!("own {i}"), r);
    }

    // Fold in every counter the system exposes.
    for i in 0..n {
        writeln!(fp, "ws {i} t={}", sys.ws_time(i).as_micros()).unwrap();
    }
    writeln!(fp, "clock {}", sys.now().as_micros()).unwrap();
    writeln!(fp, "calls {}", sys.metrics().total_calls()).unwrap();
    let cs = sys.call_stats();
    writeln!(
        fp,
        "rpc attempts={} retries={} timeouts={} dups={} failures={}",
        cs.attempts, cs.retries, cs.timeouts, cs.duplicates_ignored, cs.failures
    )
    .unwrap();
    writeln!(fp, "faults {}", sys.fault_stats().total()).unwrap();
    let es = sys.event_stats();
    writeln!(
        fp,
        "events scheduled={} executed={} cancelled={} high_water={}",
        es.scheduled, es.executed, es.cancelled, es.high_water
    )
    .unwrap();

    // Structural invariants, independent of the seed.
    assert!(es.executed > 0, "calls must flow through the scheduler");
    assert!(
        es.scheduled >= es.executed + es.cancelled,
        "event accounting must balance"
    );
    for c in 0..CLUSTERS {
        assert_eq!(
            sys.server(ServerId(c)).queue_depth(),
            0,
            "server {c} queue must drain between operations"
        );
    }
    assert!(cs.attempts >= sys.metrics().total_calls());

    fp
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run_fingerprint(2026);
    let b = run_fingerprint(2026);
    assert_eq!(a, b, "same seed must replay the identical event sequence");
    // The run exercised the interesting machinery: retries and faults.
    assert!(a.contains("faults"), "{a}");
    let faults: u64 = a
        .lines()
        .find_map(|l| l.strip_prefix("faults "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(faults > 0, "the plan must have injected message faults");
}

#[test]
fn different_seed_changes_order_but_not_invariants() {
    let a = run_fingerprint(2026);
    let b = run_fingerprint(31);
    // run_fingerprint itself asserts the invariants for both runs; the
    // interleavings must differ.
    assert_ne!(a, b, "different seeds must produce different schedules");
}
