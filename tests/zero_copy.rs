//! PR 3 zero-copy guarantees, enforced by counting.
//!
//! Two meters watch the warm-cache open path:
//!
//! * the payload copy counter (`proto::payload::bytes_copied`), which every
//!   `Payload::from_slice` / `Payload::to_vec` and every deliberate
//!   `note_copy` at the server's filesystem boundary feeds — it measures
//!   bulk-data copies inside the fetch/store pipeline, and
//! * a counting global allocator, which catches copies the payload meter
//!   cannot see (a rogue `Vec` clone of file contents would show up here
//!   as megabytes of allocation).
//!
//! A warm open-hit must register zero payload copies and allocate far less
//! than one file's worth of bytes: the cached `Payload` is handed to the
//! open handle by refcount bump.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::payload::{bytes_copied, reset_bytes_copied};
use itc_afs::core::system::ItcSystem;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The allocator meter is process-global, so tests that measure an
/// allocation window must not overlap.
static METER: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const FILE_SIZE: usize = 1 << 20; // 1 MiB: big enough that a single stray
                                  // clone of the contents dominates the
                                  // allocator delta.
const OPENS: u64 = 50;

#[test]
fn warm_open_hit_copies_no_payload_bytes() {
    let _window = METER.lock().unwrap();
    // Revised architecture: callback validation means a warm open with an
    // unbroken promise generates no server traffic at all — the whole
    // open is workstation-local.
    let mut sys = ItcSystem::build(SystemConfig::revised(1, 1));
    sys.add_user("satya", "pw").unwrap();
    sys.login(0, "satya", "pw").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya").unwrap();

    let body = vec![0x42u8; FILE_SIZE];
    sys.store(0, "/vice/usr/satya/big.dat", body.clone())
        .unwrap();

    // Warm the cache (the miss path is allowed to copy: disk → volume →
    // payload is one counted copy) and check the contents once, outside
    // the measurement window.
    let h = sys.open_read(0, "/vice/usr/satya/big.dat").unwrap();
    assert_eq!(sys.read(0, h).unwrap(), body);
    sys.close(0, h).unwrap();

    reset_bytes_copied();
    let allocated_before = ALLOCATED.load(Ordering::Relaxed);

    for _ in 0..OPENS {
        let h = sys.open_read(0, "/vice/usr/satya/big.dat").unwrap();
        sys.close(0, h).unwrap();
    }

    let allocated = ALLOCATED.load(Ordering::Relaxed) - allocated_before;
    assert_eq!(
        bytes_copied(),
        0,
        "warm open-hits must not copy payload bytes"
    );
    // 50 open-hits of a 1 MiB file: the old design cloned the cache entry
    // into the handle each time (≥ 50 MiB). The zero-copy path allocates
    // only handle bookkeeping — well under one file's worth total.
    assert!(
        allocated < FILE_SIZE as u64,
        "{OPENS} warm opens allocated {allocated} bytes — \
         more than one {FILE_SIZE}-byte file; something is cloning payloads"
    );

    // The handle still reads the right bytes after all that.
    let h = sys.open_read(0, "/vice/usr/satya/big.dat").unwrap();
    assert_eq!(sys.read(0, h).unwrap(), body);
    sys.close(0, h).unwrap();
}

/// Per-call statistics are on the hot path of every simulated RPC: once a
/// label has been seen, bumping it again must not allocate (the label is
/// interned on first sighting; lookups afterwards borrow it).
#[test]
fn counter_bumps_are_allocation_free_after_warmup() {
    let _window = METER.lock().unwrap();
    let mut calls = itc_afs::sim::Counter::new();
    // Warm-up: first sighting of each label may allocate its key.
    for kind in ["fetch", "store", "validate", "getstatus"] {
        calls.bump(kind);
    }

    // A handful of measurement windows: the test harness's own threads may
    // allocate (result formatting) during any one window, but a genuine
    // per-bump allocation would taint every window.
    let mut clean_window = false;
    for _ in 0..5 {
        let allocated_before = ALLOCATED.load(Ordering::Relaxed);
        for _ in 0..10_000 {
            for kind in ["fetch", "store", "validate", "getstatus"] {
                calls.bump(kind);
            }
        }
        let allocated = ALLOCATED.load(Ordering::Relaxed) - allocated_before;
        if allocated == 0 {
            clean_window = true;
            break;
        }
    }
    assert!(
        clean_window,
        "every window of 40k warm-label bumps allocated — \
         the per-call accounting path must be allocation-free"
    );
    // One warm-up bump plus 10k per measurement window actually ran.
    assert_eq!((calls.get("fetch") - 1) % 10_000, 0);
    assert!(calls.get("fetch") > 10_000);
    assert_eq!(calls.total(), 4 * calls.get("fetch"));
}
