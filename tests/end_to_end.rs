//! End-to-end integration tests: every operation exercised through the
//! full stack (workstation namespace → Venus cache → secure RPC →
//! Vice server → volume storage).

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::{EntryKind, ServerId, ViceError};
use itc_afs::core::system::{ItcSystem, SystemError};
use itc_afs::core::venus::VenusError;

fn campus() -> ItcSystem {
    let mut sys = ItcSystem::build(SystemConfig::prototype(2, 2));
    for (u, p) in [("satya", "pw1"), ("howard", "pw2"), ("nichols", "pw3")] {
        sys.add_user(u, p).unwrap();
    }
    sys
}

#[test]
fn full_file_lifecycle() {
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya/proj").unwrap();

    // Create, read, overwrite, stat, list, rename, delete.
    sys.store(0, "/vice/usr/satya/proj/a.c", b"v1".to_vec())
        .unwrap();
    assert_eq!(sys.fetch(0, "/vice/usr/satya/proj/a.c").unwrap(), b"v1");
    sys.store(0, "/vice/usr/satya/proj/a.c", b"version two".to_vec())
        .unwrap();
    let st = sys.stat(0, "/vice/usr/satya/proj/a.c").unwrap();
    assert_eq!(st.size, 11);
    assert_eq!(st.kind, EntryKind::File);

    let listing = sys.readdir(0, "/vice/usr/satya/proj").unwrap();
    assert_eq!(listing, vec![("a.c".to_string(), EntryKind::File)]);

    sys.rename(0, "/vice/usr/satya/proj/a.c", "/vice/usr/satya/proj/b.c")
        .unwrap();
    assert!(sys.fetch(0, "/vice/usr/satya/proj/a.c").is_err());
    assert_eq!(
        sys.fetch(0, "/vice/usr/satya/proj/b.c").unwrap(),
        b"version two"
    );

    sys.unlink(0, "/vice/usr/satya/proj/b.c").unwrap();
    assert!(matches!(
        sys.fetch(0, "/vice/usr/satya/proj/b.c"),
        Err(SystemError::Venus(VenusError::Vice(ViceError::NoSuchFile(
            _
        ))))
    ));
    sys.rmdir(0, "/vice/usr/satya/proj").unwrap();
}

#[test]
fn open_write_close_semantics() {
    // Section 3.2: reads and writes touch only the cached copy; the store
    // happens at close.
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.login(1, "howard", "pw2").unwrap();
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();
    sys.store(0, "/vice/usr/shared/f", b"initial".to_vec())
        .unwrap();

    let h = sys.open_write(0, "/vice/usr/shared/f").unwrap();
    sys.write(0, h, b"modified but not yet closed".to_vec())
        .unwrap();

    // Before close, another workstation still sees the old contents.
    assert_eq!(sys.fetch(1, "/vice/usr/shared/f").unwrap(), b"initial");

    sys.close(0, h).unwrap();
    // After close, "changes by one user are immediately visible to all
    // other users".
    assert_eq!(
        sys.fetch(1, "/vice/usr/shared/f").unwrap(),
        b"modified but not yet closed"
    );
}

#[test]
fn reads_and_writes_cause_no_traffic_between_open_and_close() {
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya").unwrap();
    sys.store(0, "/vice/usr/satya/f", vec![0; 50_000]).unwrap();

    let h = sys.open_read(0, "/vice/usr/satya/f").unwrap();
    let calls_before = sys.metrics().total_calls();
    for _ in 0..100 {
        let _ = sys.read(0, h).unwrap();
    }
    assert_eq!(sys.metrics().total_calls(), calls_before);
    sys.close(0, h).unwrap();
    // Closing an unmodified file is also free.
    assert_eq!(sys.metrics().total_calls(), calls_before);
}

#[test]
fn append_through_handle() {
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya").unwrap();
    sys.store(0, "/vice/usr/satya/log", b"line1\n".to_vec())
        .unwrap();
    let h = sys.open_write(0, "/vice/usr/satya/log").unwrap();
    let current = sys.read(0, h).unwrap();
    sys.write(0, h, current).unwrap();
    // Append twice before closing.
    let mut cur = sys.read(0, h).unwrap();
    cur.extend_from_slice(b"line2\n");
    sys.write(0, h, cur).unwrap();
    sys.close(0, h).unwrap();
    assert_eq!(
        sys.fetch(0, "/vice/usr/satya/log").unwrap(),
        b"line1\nline2\n"
    );
}

#[test]
fn vice_symlinks_resolve_on_fetch() {
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya").unwrap();
    sys.store(0, "/vice/usr/satya/real.txt", b"the real file".to_vec())
        .unwrap();
    sys.symlink(0, "/vice/usr/satya/alias", "/vice/usr/satya/real.txt")
        .unwrap();
    assert_eq!(
        sys.fetch(0, "/vice/usr/satya/alias").unwrap(),
        b"the real file"
    );
}

#[test]
fn cross_cluster_sharing_and_hints() {
    let mut sys = campus();
    // satya's volume lives in cluster 1; he works from cluster 0.
    sys.create_user_volume("satya", 1).unwrap();
    sys.login(0, "satya", "pw1").unwrap();
    sys.store(
        0,
        "/vice/usr/satya/far.txt",
        b"across the backbone".to_vec(),
    )
    .unwrap();
    // All file traffic went to server 1; server 0 only answered location
    // queries.
    assert!(sys.server(ServerId(1)).stats().calls_of("store") >= 1);
    assert_eq!(sys.server(ServerId(0)).stats().calls_of("store"), 0);
    assert!(sys.server(ServerId(0)).stats().calls_of("getcustodian") >= 1);

    // A second access uses the cached hint: no more location queries.
    let hints_before = sys.server(ServerId(0)).stats().calls_of("getcustodian");
    let _ = sys.fetch(0, "/vice/usr/satya/far.txt").unwrap();
    assert_eq!(
        sys.server(ServerId(0)).stats().calls_of("getcustodian"),
        hints_before
    );
}

#[test]
fn volume_move_preserves_access_transparently() {
    let mut sys = campus();
    sys.create_user_volume("satya", 0).unwrap();
    sys.login(0, "satya", "pw1").unwrap();
    sys.store(0, "/vice/usr/satya/f", b"before".to_vec())
        .unwrap();

    // The student moves dormitories: his subtree is reassigned.
    sys.move_volume("/vice/usr/satya", ServerId(1)).unwrap();

    // The same name still works — location transparency. (Venus follows
    // the NotCustodian hint transparently on the stale-hint path.)
    sys.store(0, "/vice/usr/satya/f", b"after the move".to_vec())
        .unwrap();
    assert_eq!(
        sys.fetch(0, "/vice/usr/satya/f").unwrap(),
        b"after the move"
    );
    assert!(sys.server(ServerId(1)).stats().calls_of("store") >= 1);
}

#[test]
fn quota_and_offline_full_stack() {
    let mut sys = campus();
    sys.create_user_volume("satya", 0).unwrap();
    sys.set_volume_quota("/vice/usr/satya", Some(10_000))
        .unwrap();
    sys.login(0, "satya", "pw1").unwrap();
    sys.store(0, "/vice/usr/satya/a", vec![0; 9_000]).unwrap();
    assert!(matches!(
        sys.store(0, "/vice/usr/satya/b", vec![0; 5_000]),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::QuotaExceeded(_)
        )))
    ));

    sys.set_volume_online("/vice/usr/satya", false).unwrap();
    sys.login(1, "howard", "pw2").unwrap();
    assert!(matches!(
        sys.fetch(1, "/vice/usr/satya/a"),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::VolumeOffline(_)
        )))
    ));
    sys.set_volume_online("/vice/usr/satya", true).unwrap();
    assert_eq!(sys.fetch(1, "/vice/usr/satya/a").unwrap().len(), 9_000);
}

#[test]
fn acl_round_trip_through_the_stack() {
    use itc_afs::core::protect::{AccessList, Rights};
    let mut sys = campus();
    sys.create_user_volume("satya", 0).unwrap();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir(0, "/vice/usr/satya/private").unwrap();

    let mut acl = AccessList::new();
    acl.grant("satya", Rights::ALL);
    sys.set_acl(0, "/vice/usr/satya/private", acl.clone())
        .unwrap();
    let got = sys.get_acl(0, "/vice/usr/satya/private").unwrap();
    assert_eq!(got, acl);

    // The inherited parent ACL still lets anyuser read elsewhere, but the
    // private dir is now satya-only.
    sys.store(0, "/vice/usr/satya/private/key", b"secret".to_vec())
        .unwrap();
    sys.login(1, "howard", "pw2").unwrap();
    assert!(matches!(
        sys.fetch(1, "/vice/usr/satya/private/key"),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::PermissionDenied(_)
        )))
    ));
}

#[test]
fn mixed_local_and_shared_workflow() {
    // The compiler pattern: sources shared, temporaries local.
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.mkdir_p(0, "/vice/usr/satya/src").unwrap();
    sys.store(0, "/vice/usr/satya/src/main.c", b"int main(){}".to_vec())
        .unwrap();

    let src = sys.fetch(0, "/vice/usr/satya/src/main.c").unwrap();
    sys.store(0, "/tmp/main.s", src.clone()).unwrap();
    let asm = sys.fetch(0, "/tmp/main.s").unwrap();
    sys.unlink(0, "/tmp/main.s").unwrap();
    sys.store(0, "/vice/usr/satya/src/main.o", asm).unwrap();

    assert_eq!(
        sys.fetch(0, "/vice/usr/satya/src/main.o").unwrap(),
        b"int main(){}"
    );
}

#[test]
fn locking_across_the_stack() {
    let mut sys = campus();
    sys.login(0, "satya", "pw1").unwrap();
    sys.login(1, "howard", "pw2").unwrap();
    sys.mkdir_p(0, "/vice/usr/shared").unwrap();
    sys.store(0, "/vice/usr/shared/db", b"records".to_vec())
        .unwrap();

    // Multi-reader is fine; a writer excludes.
    sys.lock(0, "/vice/usr/shared/db", false).unwrap();
    sys.lock(1, "/vice/usr/shared/db", false).unwrap();
    assert!(matches!(
        sys.lock(1, "/vice/usr/shared/db", true),
        Err(SystemError::Venus(VenusError::Vice(
            ViceError::LockConflict(_)
        )))
    ));
    sys.unlock(0, "/vice/usr/shared/db").unwrap();
    sys.unlock(1, "/vice/usr/shared/db").unwrap();
    sys.lock(1, "/vice/usr/shared/db", true).unwrap();

    // Locking is advisory: an unlocked write still succeeds.
    assert!(sys
        .store(0, "/vice/usr/shared/db", b"clobbered".to_vec())
        .is_ok());
}
