//! Deterministic fault injection: lost and duplicated messages, RPC
//! retry with idempotency tokens, server crashes that lose callback state,
//! and recovery after restart.
//!
//! The paper's availability goal (Section 2.2): a single machine failure
//! "should not affect the entire user community", and a user "could, if he
//! so desired, continue work in the presence of... failures". These tests
//! stage exact failures through [`FaultPlan`] and check that the retry
//! machinery, the replay cache, and the epoch-based recovery protocol keep
//! the file system consistent — bit-identically for a given seed.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::proto::ServerId;
use itc_afs::core::system::ItcSystem;
use itc_afs::rpc::{CallStats, RetryPolicy};
use itc_afs::sim::{FaultPlan, FaultStats, ScriptedFault, SimTime, ValidationMode};

const SHARED: &str = "/vice/usr/shared";

/// One cluster, two logged-in users, a shared directory.
fn small_system(validation: ValidationMode) -> ItcSystem {
    let cfg = SystemConfig {
        validation,
        ..SystemConfig::prototype(1, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.login(0, "a", "pw").unwrap();
    sys.login(1, "b", "pw").unwrap();
    sys.mkdir_p(0, SHARED).unwrap();
    sys
}

/// Two clusters (one server each), callback mode, a user per cluster.
fn two_cluster_system() -> ItcSystem {
    let cfg = SystemConfig {
        validation: ValidationMode::Callback,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.login(0, "a", "pw").unwrap(); // cluster 0, home server 0
    sys.login(2, "b", "pw").unwrap(); // cluster 1, home server 1
    sys.mkdir_p(0, SHARED).unwrap();
    sys
}

// ----------------------------------------------------------------------
// Message loss and the idempotent retry path
// ----------------------------------------------------------------------

#[test]
fn lost_store_reply_is_retried_without_double_apply() {
    for mode in [ValidationMode::CheckOnOpen, ValidationMode::Callback] {
        let mut sys = small_system(mode);
        let file = format!("{SHARED}/f");
        sys.store(0, &file, b"v1".to_vec()).unwrap();
        let before = sys.stat(0, &file).unwrap().version;

        // The server applies the next Store, but its reply is lost. The
        // retry carries the same idempotency token, so the server answers
        // from its replay cache instead of bumping the version again.
        let mut plan = FaultPlan::new(0xfa01);
        plan.inject_once(0, ScriptedFault::DropReply);
        sys.install_faults(plan);

        sys.store(0, &file, b"v2-new-contents".to_vec()).unwrap();

        assert_eq!(sys.fetch(1, &file).unwrap(), b"v2-new-contents");
        let after = sys.stat(0, &file).unwrap().version;
        assert_eq!(
            after,
            before + 1,
            "retried store double-applied in {mode:?}: version went {before} -> {after}"
        );
        assert_eq!(sys.fault_stats().replies_dropped, 1);
        let stats = sys.call_stats();
        assert!(stats.retries >= 1, "no retry recorded in {mode:?}");
        assert!(stats.timeouts >= 1, "no timeout recorded in {mode:?}");
        assert_eq!(stats.failures, 0);
    }
}

#[test]
fn lost_store_request_is_retried_and_applied_once() {
    let mut sys = small_system(ValidationMode::Callback);
    let file = format!("{SHARED}/g");
    sys.store(0, &file, b"v1".to_vec()).unwrap();
    let before = sys.stat(0, &file).unwrap().version;

    // The next request to server 0 vanishes before arriving; the server
    // never saw attempt one, so the retry is the first application. The
    // secure channel must accept the retry's sequence number despite the
    // gap left by the lost datagram.
    let mut plan = FaultPlan::new(0xfa02);
    plan.inject_once(0, ScriptedFault::DropRequest);
    sys.install_faults(plan);

    sys.store(0, &file, b"v2".to_vec()).unwrap();

    assert_eq!(sys.fetch(1, &file).unwrap(), b"v2");
    assert_eq!(sys.stat(0, &file).unwrap().version, before + 1);
    assert_eq!(sys.fault_stats().requests_dropped, 1);
    assert!(sys.call_stats().retries >= 1);
}

#[test]
fn duplicated_fetch_reply_is_ignored() {
    let mut sys = small_system(ValidationMode::Callback);
    let file = format!("{SHARED}/dup");
    sys.store(0, &file, b"payload".to_vec()).unwrap();

    // The network delivers the reply to b's next call twice; the channel's
    // sequence check throws the second copy away.
    let mut plan = FaultPlan::new(0xfa03);
    plan.inject_once(0, ScriptedFault::DuplicateReply);
    sys.install_faults(plan);

    assert_eq!(sys.fetch(1, &file).unwrap(), b"payload");
    assert!(sys.call_stats().duplicates_ignored >= 1);
    assert_eq!(sys.fault_stats().replies_duplicated, 1);
    assert_eq!(sys.call_stats().failures, 0);
}

#[test]
fn exhausted_retries_surface_degraded_mode_for_mutations() {
    let mut sys = small_system(ValidationMode::Callback);
    let file = format!("{SHARED}/h");
    sys.store(0, &file, b"v1".to_vec()).unwrap();
    let before = sys.stat(0, &file).unwrap().version;

    // Two attempts allowed, both replies lost: the logical call fails and
    // the mutation is reported as degraded (it WAS applied server-side —
    // the replay cache remembers — but the client cannot know that).
    let timeout = sys.retry_policy().timeout;
    sys.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::standard(timeout)
    });
    let mut plan = FaultPlan::new(0xfa04);
    plan.inject_once(0, ScriptedFault::DropRequest);
    plan.inject_once(0, ScriptedFault::DropRequest);
    sys.install_faults(plan);

    let err = sys.store(0, &file, b"v2".to_vec()).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("degraded") || msg.contains("timed out"),
        "unexpected failure shape: {msg}"
    );
    assert!(sys.call_stats().failures >= 1);
    // Neither request arrived, so nothing was applied.
    assert_eq!(sys.stat(1, &file).unwrap().version, before);
}

// ----------------------------------------------------------------------
// Server crash: callback state loss, containment, recovery
// ----------------------------------------------------------------------

#[test]
fn crash_is_contained_and_caches_keep_serving() {
    let mut sys = two_cluster_system();
    let shared_file = format!("{SHARED}/doc");
    sys.create_user_volume("b", 1).unwrap(); // b's volume on server 1

    sys.store(0, &shared_file, b"v1".to_vec()).unwrap();
    // b caches the shared file under a callback promise, and works in
    // their own volume once so the custodian hint for it is warm.
    assert_eq!(sys.fetch(2, &shared_file).unwrap(), b"v1");
    assert!(sys.server(ServerId(0)).callback_promises() >= 1);
    sys.store(2, "/vice/usr/b/notes", b"v0".to_vec()).unwrap();

    sys.crash_server(ServerId(0));

    // The crash wiped server 0's in-memory callback state.
    assert_eq!(sys.server(ServerId(0)).callback_promises(), 0);

    // b's promise-protected cached copy keeps serving with zero traffic —
    // while the custodian is down nothing can mutate the file, so the
    // copy is genuinely current.
    let calls = sys.metrics().total_calls();
    for _ in 0..3 {
        assert_eq!(sys.fetch(2, &shared_file).unwrap(), b"v1");
    }
    assert_eq!(
        sys.metrics().total_calls(),
        calls,
        "cache hit went to the wire"
    );

    // b's own volume lives on server 1 and is completely unaffected.
    sys.store(2, "/vice/usr/b/notes", b"mine".to_vec()).unwrap();
    assert_eq!(sys.fetch(2, "/vice/usr/b/notes").unwrap(), b"mine");

    // a, homed on the crashed server, is degraded for mutations...
    let err = sys.store(0, &shared_file, b"v2".to_vec()).unwrap_err();
    assert!(format!("{err}").contains("degraded"), "got: {err}");
    // ...and reads of uncached files fail as unreachable.
    let err = sys.fetch(0, &format!("{SHARED}/other")).unwrap_err();
    assert!(format!("{err}").contains("unreachable"), "got: {err}");
}

#[test]
fn restart_recovers_promises_via_epoch_discovery() {
    let mut sys = two_cluster_system();
    let file = format!("{SHARED}/doc");
    sys.store(0, &file, b"v1".to_vec()).unwrap();
    assert_eq!(sys.fetch(2, &file).unwrap(), b"v1");

    let epoch_before = sys.server_epoch(ServerId(0));
    sys.crash_server(ServerId(0));
    sys.restart_server(ServerId(0));
    assert_eq!(sys.server_epoch(ServerId(0)), epoch_before + 1);

    // The restarted server has forgotten b's promise, so a's store cannot
    // send b a break: b's cached copy is stale until b talks to server 0.
    sys.store(0, &file, b"v2".to_vec()).unwrap();
    assert_eq!(
        sys.fetch(2, &file).unwrap(),
        b"v1",
        "staleness window should exist until b contacts the restarted server"
    );

    // b's first genuine exchange with server 0 reveals the new epoch;
    // Venus discards suspect cache entries and revalidates.
    sys.store(2, &format!("{SHARED}/from-b"), b"x".to_vec())
        .unwrap();
    assert_eq!(sys.fetch(2, &file).unwrap(), b"v2");

    // With a fresh promise in place the hit ratio recovers: repeat opens
    // are served locally again.
    let hits_before = sys.venus(2).cache().stats().hits;
    let misses_before = sys.venus(2).cache().stats().misses;
    for _ in 0..5 {
        assert_eq!(sys.fetch(2, &file).unwrap(), b"v2");
    }
    let stats = sys.venus(2).cache().stats();
    assert_eq!(stats.hits, hits_before + 5);
    assert_eq!(stats.misses, misses_before);
}

#[test]
fn scheduled_crash_fires_at_virtual_time() {
    let mut sys = two_cluster_system();
    let file = format!("{SHARED}/t");
    sys.store(0, &file, b"v1".to_vec()).unwrap();

    let crash_at = sys.now() + SimTime::from_secs(60);
    let restart_at = crash_at + SimTime::from_secs(120);
    let mut plan = FaultPlan::new(0xfa05);
    plan.schedule_crash(0, crash_at);
    plan.schedule_restart(0, restart_at);
    sys.install_faults(plan);

    // Before the scheduled time the server works normally.
    sys.store(0, &file, b"v2".to_vec()).unwrap();
    assert!(sys.server(ServerId(0)).is_online());

    // Step past the crash time: the next call finds the server down.
    let t = sys.ws_time(0) + SimTime::from_secs(90);
    sys.advance_ws(0, t);
    let err = sys.store(0, &file, b"v3".to_vec()).unwrap_err();
    assert!(format!("{err}").contains("degraded"), "got: {err}");
    assert!(!sys.server(ServerId(0)).is_online());

    // Step past the restart: service resumes.
    let t = sys.ws_time(0) + SimTime::from_secs(300);
    sys.advance_ws(0, t);
    sys.store(0, &file, b"v4".to_vec()).unwrap();
    assert!(sys.server(ServerId(0)).is_online());
    assert_eq!(sys.fetch(0, &file).unwrap(), b"v4");
}

// ----------------------------------------------------------------------
// Bit-reproducibility
// ----------------------------------------------------------------------

/// Runs a lossy mixed workload and returns everything observable.
fn lossy_run(seed: u64) -> (CallStats, FaultStats, Vec<String>, Vec<u64>, SimTime) {
    let cfg = SystemConfig {
        validation: ValidationMode::Callback,
        seed,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.login(0, "a", "pw").unwrap();
    sys.login(2, "b", "pw").unwrap();
    sys.mkdir_p(0, SHARED).unwrap();

    let mut plan = FaultPlan::new(seed ^ 0xdead_beef)
        .drop_request_prob(0.12)
        .drop_reply_prob(0.08)
        .duplicate_reply_prob(0.05);
    plan.schedule_crash(1, SimTime::from_secs(400));
    plan.schedule_restart(1, SimTime::from_secs(900));
    sys.install_faults(plan);

    let mut outcomes = Vec::new();
    for i in 0..24u64 {
        let ws = if i % 3 == 0 { 2 } else { 0 };
        let file = format!("{SHARED}/w{}", i % 5);
        let r = match i % 4 {
            0 | 1 => sys
                .store(ws, &file, format!("round-{i}").into_bytes())
                .map(|()| "stored".to_string()),
            2 => sys
                .fetch(ws, &file)
                .map(|d| format!("read {} bytes", d.len())),
            _ => sys.stat(ws, &file).map(|st| format!("v{}", st.version)),
        };
        outcomes.push(match r {
            Ok(s) => format!("op{i}: {s}"),
            Err(e) => format!("op{i}: error {e}"),
        });
        let t = sys.ws_time(ws) + SimTime::from_secs(40);
        sys.advance_ws(ws, t);
    }

    let versions = (0..5)
        .map(|k| {
            sys.stat(0, &format!("{SHARED}/w{k}"))
                .map(|st| st.version)
                .unwrap_or(0)
        })
        .collect();
    (
        sys.call_stats(),
        sys.fault_stats(),
        outcomes,
        versions,
        sys.now(),
    )
}

#[test]
fn faulty_runs_are_bit_reproducible_per_seed() {
    let (ca, fa, oa, va, ta) = lossy_run(2024);
    let (cb, fb, ob, vb, tb) = lossy_run(2024);
    assert_eq!(ca, cb, "call stats diverged between identical runs");
    assert_eq!(fa, fb, "fault stats diverged between identical runs");
    assert_eq!(oa, ob, "operation outcomes diverged between identical runs");
    assert_eq!(va, vb, "final versions diverged between identical runs");
    assert_eq!(ta, tb, "virtual clock diverged between identical runs");
    // The plan genuinely injected faults and the client genuinely retried.
    assert!(fa.total() > 0, "fault plan injected nothing: {fa:?}");
    assert!(ca.retries > 0, "no retries exercised: {ca:?}");
}
