//! Crash consistency: the write-ahead journal, the torn-write crash
//! model, and the salvager.
//!
//! Section 5.3 makes the volume the unit of recovery — it may be "turned
//! offline or online ... and salvaged after a system crash". These tests
//! pin the property that motivates the write-ahead discipline: **no
//! acknowledged Store is ever lost to a crash, at any torn-write cut
//! point**, and every salvaged volume satisfies its structural
//! invariants. The Lazy policy exists as the anti-model: it demonstrates
//! exactly the loss the default policy rules out.

use itc_afs::core::config::SystemConfig;
use itc_afs::core::disk::{Disk, JournalOp, SyncPolicy};
use itc_afs::core::protect::{AccessList, Rights};
use itc_afs::core::proto::{Payload, ServerId};
use itc_afs::core::system::ItcSystem;
use itc_afs::core::volume::{Volume, VolumeId};
use itc_afs::sim::{FaultPlan, SimTime, ValidationMode};

const SHARED: &str = "/vice/usr/shared";

/// Two clusters (one server each), callback mode, a user per cluster.
fn two_cluster_system(seed: u64) -> ItcSystem {
    let cfg = SystemConfig {
        validation: ValidationMode::Callback,
        seed,
        ..SystemConfig::prototype(2, 2)
    };
    let mut sys = ItcSystem::build(cfg);
    sys.add_user("a", "pw").unwrap();
    sys.add_user("b", "pw").unwrap();
    sys.login(0, "a", "pw").unwrap(); // cluster 0, home server 0
    sys.login(2, "b", "pw").unwrap(); // cluster 1, home server 1
    sys.mkdir_p(0, SHARED).unwrap();
    sys
}

/// Server-side content of `vice_path` on `srv`, read straight off the
/// hosting volume (bypassing every cache).
fn server_file(sys: &ItcSystem, srv: ServerId, vice_path: &str) -> Option<Vec<u8>> {
    sys.server(srv)
        .volumes()
        .iter()
        .filter(|v| v.covers(vice_path) && !v.is_read_only())
        .max_by_key(|v| v.mount().len())
        .and_then(|v| {
            let internal = v.internal_path(vice_path)?;
            v.fs().read(&internal).ok()
        })
}

// ----------------------------------------------------------------------
// The journal-boundary sweep: every possible torn cut
// ----------------------------------------------------------------------

fn sweep_volume() -> Volume {
    let mut acl = AccessList::new();
    acl.grant("satya", Rights::ALL);
    Volume::new(VolumeId(3), "user.sweep", "/vice/usr/sweep", acl)
}

fn store_op(path: &str, data: &[u8]) -> JournalOp {
    JournalOp::Store {
        path: path.to_string(),
        uid: 1,
        mtime: 10,
        data: Payload::from_vec(data.to_vec()),
    }
}

/// What a volume looks like to a client: per-path content plus the usage
/// counter. Two volumes with equal fingerprints are indistinguishable for
/// the paths the workload touched.
fn fingerprint(vol: &Volume, paths: &[&str]) -> (Vec<Option<Vec<u8>>>, u64) {
    (
        paths.iter().map(|p| vol.fs().read(p).ok()).collect(),
        vol.used_bytes(),
    )
}

/// The tentpole property, exhaustively: journal a mixed op sequence with
/// **no** syncs (so every byte of the log is tearable), then crash at
/// every possible torn-write cut `0..=total_len`. At each cut the
/// salvaged volume must (a) pass its structural invariants and (b) equal
/// the state after exactly the records that survived the cut — torn tails
/// are discarded whole, never half-applied.
#[test]
fn every_torn_cut_point_salvages_to_a_committed_prefix() {
    let mut disk = Disk::new(SyncPolicy::Lazy);
    let mut vol = sweep_volume();
    disk.checkpoint(&vol);

    let ops = vec![
        JournalOp::Mkdir {
            path: "/d".into(),
            uid: 1,
            mtime: 1,
        },
        store_op("/a.txt", b"first version"),
        store_op("/d/b.txt", b"nested"),
        // An op that fails to apply: closed with an abort trailer, and the
        // salvager must skip it at every surviving cut.
        JournalOp::Rmdir {
            path: "/missing".into(),
            mtime: 2,
        },
        store_op("/a.txt", b"second, longer version"),
        JournalOp::Remove {
            path: "/d/b.txt".into(),
            mtime: 3,
        },
        JournalOp::SetQuota { bytes: Some(4096) },
    ];

    // `snapshots[k]` is the volume after the first `k` records; an aborted
    // record leaves the volume unchanged, which the clone captures.
    let mut snapshots = vec![vol.clone()];
    for op in ops {
        let seq = disk.begin(vol.id(), op.clone());
        let ok = op.apply(&mut vol).is_ok();
        disk.commit(seq, ok);
        snapshots.push(vol.clone());
    }

    let paths = ["/a.txt", "/d/b.txt"];
    let total = disk.journal().stats().total_len;
    assert!(total > 0);
    for cut in 0..=total {
        let mut crashed = disk.clone();
        crashed.crash_truncate(cut);
        let survivors = crashed.journal().records().len();
        let (rebuilt, report) = crashed.salvage(VolumeId(3)).unwrap();
        assert!(
            report.is_clean(),
            "cut at byte {cut}: salvage not clean: {report:?}"
        );
        assert!(rebuilt.is_online(), "cut at byte {cut}");
        assert!(
            rebuilt.check_invariants().is_ok(),
            "cut at byte {cut}: invariants broken"
        );
        assert_eq!(
            fingerprint(&rebuilt, &paths),
            fingerprint(&snapshots[survivors], &paths),
            "cut at byte {cut} ({survivors} surviving records): salvaged \
             state is not the committed prefix"
        );
    }
}

// ----------------------------------------------------------------------
// The write-ahead guarantee, end to end
// ----------------------------------------------------------------------

/// Under the default `WriteAhead` policy a scheduled crash cannot lose an
/// acknowledged Store: the journal was forced before the reply left, so
/// the salvager replays it onto the checkpoint and the file is there when
/// the volume comes back online.
#[test]
fn acknowledged_stores_survive_a_scheduled_crash() {
    let mut sys = two_cluster_system(0x5a_1f);
    let file = format!("{SHARED}/precious");
    sys.store(0, &file, b"acked before the crash".to_vec())
        .unwrap();

    let crash_at = sys.now() + SimTime::from_secs(60);
    let restart_at = crash_at + SimTime::from_secs(120);
    let mut plan = FaultPlan::new(0x5a_1f);
    plan.schedule_crash(0, crash_at);
    plan.schedule_restart(0, restart_at);
    sys.install_faults(plan);

    // Ride past the crash and the restart; the salvager passes run as
    // calendar events right after the restart fires.
    let t = sys.ws_time(0) + SimTime::from_secs(300);
    sys.advance_ws(0, t);
    sys.run_fault_schedule();

    assert!(sys.server(ServerId(0)).is_online());
    assert!(
        sys.server_salvage_pending(ServerId(0)).is_empty(),
        "all volumes must have been salvaged"
    );
    let reports = sys.server_salvage_reports(ServerId(0)).to_vec();
    assert!(!reports.is_empty(), "salvager must have run");
    for r in &reports {
        assert!(r.is_clean(), "unclean salvage: {r:?}");
    }
    // Nothing was torn off: the journal was clean when the crash hit.
    assert_eq!(sys.server_journal_stats(ServerId(0)).torn_discarded, 0);

    // The acknowledged bytes are on the salvaged volume and servable.
    assert_eq!(
        server_file(&sys, ServerId(0), &file).as_deref(),
        Some(b"acked before the crash".as_slice())
    );
    assert_eq!(sys.fetch(0, &file).unwrap(), b"acked before the crash");
}

/// While a volume is being salvaged the server is up but the volume is
/// offline: mutations degrade with a distinguishable error and succeed
/// once the salvager pass completes.
#[test]
fn traffic_during_the_salvage_window_sees_volume_offline() {
    let mut sys = two_cluster_system(0x5a_2f);
    let file = format!("{SHARED}/during");
    sys.store(0, &file, b"v1".to_vec()).unwrap();
    // Bind workstation 2 to server 0 ahead of time (the mutual
    // authentication handshake costs more virtual time than a salvage
    // pass, which would otherwise hide the window from a first contact).
    let other = format!("{SHARED}/other");
    sys.store(0, &other, b"warm".to_vec()).unwrap();
    assert_eq!(sys.fetch(2, &other).unwrap(), b"warm");

    let crash_at = sys.now() + SimTime::from_secs(60);
    let restart_at = crash_at + SimTime::from_secs(120);
    let mut plan = FaultPlan::new(0x5a_2f);
    plan.schedule_crash(0, crash_at);
    plan.schedule_restart(0, restart_at);
    sys.install_faults(plan);

    // A workstation with no cached copy lands inside the salvage window:
    // the restart has fired but the salvager passes (fixed cost plus
    // per-record work) have not completed, so the read reaches a server
    // that is up while its volume is still offline.
    sys.advance_ws(2, restart_at + SimTime::from_millis(1));
    let err = sys.fetch(2, &file).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("volume offline"),
        "expected the offline-volume error, got: {msg}"
    );
    assert!(
        sys.server(ServerId(0)).is_online(),
        "the server itself is up during salvage"
    );

    // Once the passes complete the same read succeeds with the pre-crash
    // acknowledged state, and mutations flow again.
    let t = sys.ws_time(2) + SimTime::from_secs(30);
    sys.advance_ws(2, t);
    assert_eq!(sys.fetch(2, &file).unwrap(), b"v1");
    let t = sys.ws_time(0) + SimTime::from_secs(300);
    sys.advance_ws(0, t);
    sys.store(0, &file, b"v2".to_vec()).unwrap();
    assert_eq!(sys.fetch(0, &file).unwrap(), b"v2");
}

// ----------------------------------------------------------------------
// The anti-model: Lazy syncing loses acknowledged data
// ----------------------------------------------------------------------

/// With `SyncPolicy::Lazy` the journal is never forced, so a crash tears
/// off acknowledged mutations. The salvager still produces a clean,
/// invariant-satisfying volume — it is simply missing the unsynced tail.
/// This is the loss the default write-ahead policy exists to prevent.
#[test]
fn lazy_sync_loses_acknowledged_tail_yet_salvages_clean() {
    let mut sys = two_cluster_system(0x5a_3f);
    let file = format!("{SHARED}/doomed");
    sys.set_journal_sync_policy(ServerId(0), SyncPolicy::Lazy);

    // Acknowledged to the client, but never forced to the platter.
    sys.store(0, &file, b"acked and lost".to_vec()).unwrap();
    assert!(
        sys.server_journal_stats(ServerId(0)).synced_len
            < sys.server_journal_stats(ServerId(0)).total_len
    );

    sys.crash_server(ServerId(0));
    sys.restart_server(ServerId(0));

    let stats = sys.server_journal_stats(ServerId(0));
    assert!(
        stats.torn_discarded > 0,
        "the crash must have torn off unsynced bytes: {stats:?}"
    );
    for r in sys.server_salvage_reports(ServerId(0)) {
        assert!(r.is_clean(), "loss must not mean damage: {r:?}");
    }
    // The acknowledged store is gone from the server.
    assert_eq!(server_file(&sys, ServerId(0), &file), None);
    // A workstation that never cached it cannot fetch it.
    assert!(sys.fetch(2, &file).is_err());
}

// ----------------------------------------------------------------------
// Queue high-water marks are per incarnation
// ----------------------------------------------------------------------

/// The request-queue high-water mark restarts from zero with each server
/// incarnation; completed incarnations are archived as `(epoch, mark)`.
#[test]
fn queue_high_water_resets_per_incarnation() {
    let mut sys = two_cluster_system(0x5a_4f);
    let file = format!("{SHARED}/q");
    sys.store(0, &file, b"v1".to_vec()).unwrap();

    let history = sys.server_queue_history(ServerId(0));
    assert_eq!(history.len(), 1, "one live incarnation: {history:?}");
    let (epoch0, hw0) = history[0];
    assert!(hw0 >= 1, "traffic must have queued: {history:?}");

    sys.crash_server(ServerId(0));
    sys.restart_server(ServerId(0));
    let history = sys.server_queue_history(ServerId(0));
    assert_eq!(history.len(), 2, "archived + live: {history:?}");
    assert_eq!(history[0], (epoch0, hw0), "archive must be frozen");
    assert_eq!(
        history[1],
        (epoch0 + 1, 0),
        "new incarnation starts at zero"
    );

    sys.store(0, &file, b"v2".to_vec()).unwrap();
    let history = sys.server_queue_history(ServerId(0));
    assert!(history[1].1 >= 1, "live mark must track new traffic");
    assert_eq!(history[0], (epoch0, hw0), "archive still frozen");
}

// ----------------------------------------------------------------------
// Bit-reproducibility of the crash/salvage path
// ----------------------------------------------------------------------

/// A seeded run through crash, torn-write draw, salvage, and recovery is
/// bit-identical across executions: same outcomes, same journal counters,
/// same final virtual time.
#[test]
fn crash_and_salvage_path_is_bit_reproducible() {
    fn run(seed: u64) -> (Vec<String>, u64, u64, u64, SimTime) {
        let mut sys = two_cluster_system(seed);
        sys.set_journal_sync_policy(ServerId(0), SyncPolicy::Lazy);
        let mut plan = FaultPlan::new(seed ^ 0x7ea2)
            .drop_reply_prob(0.10)
            .drop_request_prob(0.05);
        plan.schedule_crash(0, SimTime::from_secs(300));
        plan.schedule_restart(0, SimTime::from_secs(600));
        sys.install_faults(plan);

        let mut outcomes = Vec::new();
        for i in 0..16u64 {
            let ws = if i % 3 == 0 { 2 } else { 0 };
            let file = format!("{SHARED}/r{}", i % 4);
            let r = sys.store(ws, &file, format!("c{i}").into_bytes());
            outcomes.push(match r {
                Ok(()) => format!("{i}:ok"),
                Err(e) => format!("{i}:{e}"),
            });
            let t = sys.ws_time(ws) + SimTime::from_secs(60);
            sys.advance_ws(ws, t);
        }
        sys.run_fault_schedule();
        let js = sys.server_journal_stats(ServerId(0));
        let replayed: u64 = sys
            .server_salvage_reports(ServerId(0))
            .iter()
            .map(|r| r.replayed)
            .sum();
        (
            outcomes,
            js.torn_discarded,
            js.records_discarded,
            replayed,
            sys.now(),
        )
    }

    let a = run(0xc0de);
    let b = run(0xc0de);
    assert_eq!(a, b, "same seed must reproduce the crash path bit for bit");
}
