//! Facade crate for the ITC distributed file system reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use itc_afs::...`. See the individual crates for
//! the real documentation:
//!
//! * [`core`] (`itc-core`) — Vice servers, Venus cache manager, protocol,
//!   protection, volumes, location database, cluster assembly.
//! * [`sim`] (`itc-sim`) — virtual clock, resources, cost model.
//! * [`unixfs`] (`itc-unixfs`) — in-memory Unix-like file system substrate.
//! * [`cryptbox`] (`itc-cryptbox`) — cipher, handshake, secure channels.
//! * [`rpc`] (`itc-rpc`) — secure RPC with whole-file side-effect transfer.
//! * [`workload`] (`itc-workload`) — synthetic users and the 5-phase
//!   benchmark.
//! * [`baseline`] (`itc-baseline`) — rival architectures (remote-open,
//!   page-caching) for the Section 6 comparison.

pub use itc_baseline as baseline;
pub use itc_core as core;
pub use itc_cryptbox as cryptbox;
pub use itc_rpc as rpc;
pub use itc_sim as sim;
pub use itc_unixfs as unixfs;
pub use itc_workload as workload;
