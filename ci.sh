#!/bin/sh
# Tier-1 verification, fully offline (the main workspace has no external
# dependencies). Run from the repository root.
#
#   ./ci.sh            offline build + full workspace test suite
#   ./ci.sh network    additionally run the optional proptest/criterion
#                      suite in extras/ (needs crates.io access)
set -eu

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (offline, deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== rustdoc (offline, deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== build (offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --workspace --offline

echo "== crash-consistency property suite (offline) =="
cargo test -q --offline --test salvage

echo "== tracing suite (zero perturbation + flight recorder, offline) =="
cargo test -q --offline --test tracing

# Wall-clock budget: the four storms + fixes + round-trips run in ~1.3 s
# release (budget 60 s), so the suite runs unconditionally.
echo "== storm scenario suite (four storms, golden pin, fix gates, offline) =="
cargo test -q --offline --test scenarios

echo "== integrity suite (Merkle property, exhaustive corruption sweep, scrub golden, offline) =="
cargo test -q --offline --test integrity

echo "== observability suite (series round-trips, health verdicts, console golden, offline) =="
cargo test -q --offline --test obs

echo "== bench smoke (schema + deterministic-metric gate vs BENCH_pr5.json) =="
cargo run -q -p itc-bench --release --offline --bin bench -- --smoke

echo "== scrub bench smoke (deterministic scrub metrics vs BENCH_pr9.json) =="
cargo run -q -p itc-bench --release --offline --bin bench -- scrub --smoke

echo "== corruption-sweep determinism (same seed => byte-identical scrub report) =="
SCRUB_TMP=$(mktemp -d)
cargo run -q -p itc-bench --release --offline --bin bench -- scrub --smoke | grep -v wall_ms > "$SCRUB_TMP/a"
cargo run -q -p itc-bench --release --offline --bin bench -- scrub --smoke | grep -v wall_ms > "$SCRUB_TMP/b"
diff "$SCRUB_TMP/a" "$SCRUB_TMP/b"
rm -rf "$SCRUB_TMP"

echo "== vice-top smoke (deterministic series metrics + health verdicts vs BENCH_pr10.json) =="
cargo run -q -p itc-bench --release --offline --bin bench -- top --smoke

echo "== series-export determinism (same seed => byte-identical series JSONL) =="
TOP_TMP=$(mktemp -d)
cargo run -q -p itc-bench --release --offline --bin bench -- top --export "$TOP_TMP/a" > /dev/null
cargo run -q -p itc-bench --release --offline --bin bench -- top --export "$TOP_TMP/b" > /dev/null
diff -r "$TOP_TMP/a" "$TOP_TMP/b"
rm -rf "$TOP_TMP"

echo "== parallel determinism (sequential vs --parallel 4, byte-identical) =="
PDES_TMP=$(mktemp -d)
cargo run -q -p itc-bench --release --offline --bin pdes -- day --out "$PDES_TMP/day_seq.jsonl"
cargo run -q -p itc-bench --release --offline --bin pdes -- day --parallel 4 --out "$PDES_TMP/day_par.jsonl"
diff "$PDES_TMP/day_seq.jsonl" "$PDES_TMP/day_par.jsonl"
cargo run -q -p itc-bench --release --offline --bin pdes -- login --out "$PDES_TMP/login_seq.jsonl"
cargo run -q -p itc-bench --release --offline --bin pdes -- login --parallel 4 --out "$PDES_TMP/login_par.jsonl"
diff "$PDES_TMP/login_seq.jsonl" "$PDES_TMP/login_par.jsonl"
cargo run -q -p itc-bench --release --offline --bin pdes -- series --out "$PDES_TMP/series_seq.jsonl"
cargo run -q -p itc-bench --release --offline --bin pdes -- series --parallel 4 --out "$PDES_TMP/series_par.jsonl"
diff "$PDES_TMP/series_seq.jsonl" "$PDES_TMP/series_par.jsonl"
rm -rf "$PDES_TMP"

echo "== pdes bench smoke (identity + BENCH_pr7.json schema) =="
cargo run -q -p itc-bench --release --offline --bin pdes -- bench --smoke

echo "== trace determinism (same seed => byte-identical anomaly JSONL) =="
TRACE_TMP=$(mktemp -d)
cargo run -q -p itc-bench --release --offline --bin trace -- --export "$TRACE_TMP/a" > /dev/null
cargo run -q -p itc-bench --release --offline --bin trace -- --export "$TRACE_TMP/b" > /dev/null
diff -r "$TRACE_TMP/a" "$TRACE_TMP/b"
rm -rf "$TRACE_TMP"

if [ "${1:-}" = "network" ]; then
    echo "== optional: property-based suite (networked) =="
    (cd extras/proptest-suite && cargo test -q && cargo bench --no-run)
fi

echo "ci.sh: all green"
